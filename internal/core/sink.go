package core

import (
	"fmt"
	"time"

	"rftp/internal/invariant"
	"rftp/internal/telemetry"
	"rftp/internal/trace"
	"rftp/internal/verbs"
	"rftp/internal/wire"
)

// SessionInfo describes a session the sink accepted.
type SessionInfo struct {
	ID uint32
	// Total is the advisory dataset size from SESSION_REQ (0 = unknown).
	Total int64
	// BlockSize is the negotiated block size.
	BlockSize int
}

// Sink is the data-sink side of the protocol: it accepts negotiation,
// owns the receive block pool, pushes credits proactively, reassembles
// out-of-order blocks by (session, sequence), and delivers an in-order
// stream to a BlockSink per session.
type Sink struct {
	ep  *Endpoint
	cfg Config

	// NewWriter supplies the per-session consumer. Defaults to
	// DiscardSink.
	NewWriter func(SessionInfo) BlockSink
	// OnSessionDone observes each finished session.
	OnSessionDone func(SessionInfo, TransferResult)
	// OnError observes fatal connection-level failures.
	OnError func(error)
	// Trace, when set, records protocol events into a ring buffer.
	Trace *trace.Ring
	// tel holds resolved metric handles; nil when telemetry is detached
	// (see AttachTelemetry).
	tel *sinkTelemetry

	ctrlQ      []ctrlItem // encoded messages awaiting queue space
	ctrlSent   []func()   // per posted send: completion callback (may be nil)
	pool       *pool      // allocated when block size is negotiated
	blockSize  int
	immMode    bool // WRITE WITH IMMEDIATE notifications negotiated
	granted    int  // credits outstanding at the source
	pendingReq bool // MR_INFO_REQUEST awaiting a free block

	sessions map[uint32]*sinkSession
	nextID   uint32

	stats  Stats
	closed bool
	failed error

	// inv is the debug-build invariant ledger (no-op handle otherwise).
	inv uint64
}

// sinkSession is one dataset being received.
type sinkSession struct {
	info   SessionInfo
	writer BlockSink
	// offsetSink is non-nil when writer accepts offset-addressed
	// concurrent stores: arriving blocks then go straight to storage
	// (bounded by StoreDepth) instead of waiting behind reassembly
	// holes. nextDeliver tracks the contiguous-arrival low-water mark on
	// this path rather than the delivery cursor.
	offsetSink  OffsetSink
	nextDeliver uint32
	ready       map[uint32]*block   // in-order path: data-ready blocks by seq
	ooo         map[uint32]struct{} // offset path: arrived seqs above nextDeliver
	storeQ      []*block            // offset path: arrived blocks awaiting a store slot
	storing     int                 // Stores issued, not yet done
	haveLast    bool
	lastSeq     uint32
	received    int64
	blocks      int64
	completeRx  bool
	finished    bool

	// Per-session telemetry counters (nil when telemetry is detached).
	telBytes  *telemetry.Counter
	telBlocks *telemetry.Counter
}

// NewSink creates the sink on an endpoint. Set NewWriter /
// OnSessionDone / OnError before the fabric starts delivering messages
// (for netfabric: before BindQP; for in-process fabrics: before the
// peer's Source starts).
func NewSink(ep *Endpoint, cfg Config) (*Sink, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	k := &Sink{
		ep:        ep,
		cfg:       cfg,
		sessions:  make(map[uint32]*sinkSession),
		NewWriter: func(SessionInfo) BlockSink { return DiscardSink{} },
		inv:       invariant.NewConn("sink"),
	}
	ep.CtrlCQ.SetHandler(k.onCtrlWC)
	ep.DataCQ.SetHandler(k.onDataWC)
	return k, nil
}

// Stats returns a snapshot of connection-level statistics.
func (k *Sink) Stats() Stats { return k.stats }

// BlockSizeInUse returns the negotiated block size (0 before
// negotiation).
func (k *Sink) BlockSizeInUse() int { return k.blockSize }

// Close tears the connection down.
func (k *Sink) Close() {
	if k.closed {
		return
	}
	k.closed = true
	k.ep.Close()
}

// ctrlItem is a control message queued for transmission, with an
// optional callback fired when its send completion arrives (i.e. the
// peer has it).
type ctrlItem struct {
	buf    []byte
	onSent func()
}

func (k *Sink) sendCtrl(c *wire.Control) { k.sendCtrlThen(c, nil) }

// sendCtrlThen queues a control message; onSent (if non-nil) fires on
// the message's send completion — after the peer acknowledged it. Used
// for ordering guarantees at teardown.
func (k *Sink) sendCtrlThen(c *wire.Control, onSent func()) {
	buf, err := c.Encode(nil)
	if err != nil {
		k.fail(fmt.Errorf("core: encoding %v: %w", c.Type, err))
		return
	}
	k.stats.CtrlMsgs++
	if k.tel != nil {
		k.tel.ctrlMsgs.Inc()
	}
	k.ctrlQ = append(k.ctrlQ, ctrlItem{buf: buf, onSent: onSent})
	k.pumpCtrl()
}

// pumpCtrl posts queued control messages while the send queue accepts
// them; ErrSendQueueFull waits for a send completion.
func (k *Sink) pumpCtrl() {
	for len(k.ctrlQ) > 0 {
		item := k.ctrlQ[0]
		err := k.ep.Ctrl.PostSend(&verbs.SendWR{Op: verbs.OpSend, Data: item.buf})
		if err == verbs.ErrSendQueueFull {
			return
		}
		if err != nil {
			k.fail(fmt.Errorf("core: posting control message: %w", err))
			return
		}
		k.ctrlQ = k.ctrlQ[1:]
		k.ctrlSent = append(k.ctrlSent, item.onSent)
	}
}

func (k *Sink) onCtrlWC(wc verbs.WC) {
	if k.closed {
		return
	}
	if wc.Status != verbs.StatusSuccess {
		if wc.Status == verbs.StatusFlushed {
			return
		}
		k.fail(fmt.Errorf("core: control QP failure: %v", wc.Status))
		return
	}
	if wc.Op != verbs.OpRecv {
		// Control send completion: run its callback (completions arrive
		// in posting order on an RC queue pair) and drain the queue.
		if len(k.ctrlSent) > 0 {
			cb := k.ctrlSent[0]
			k.ctrlSent = k.ctrlSent[1:]
			if cb != nil {
				cb()
			}
		}
		k.pumpCtrl()
		return
	}
	c, err := wire.DecodeControl(wc.Data)
	if err != nil {
		k.fail(fmt.Errorf("core: bad control message: %w", err))
		return
	}
	if err := k.ep.repostCtrlRecv(wc.WRID); err != nil && !k.closed {
		k.fail(fmt.Errorf("core: reposting control recv: %w", err))
		return
	}
	k.handleCtrl(c)
}

// onDataWC: with explicit-notification mode the sink's data QPs see no
// completions for plain RDMA WRITE (one-sided); in immediate mode every
// block announces itself here.
func (k *Sink) onDataWC(wc verbs.WC) {
	if k.closed || wc.Status == verbs.StatusFlushed {
		return
	}
	if wc.Status != verbs.StatusSuccess {
		k.fail(fmt.Errorf("core: data QP failure: %v", wc.Status))
		return
	}
	if wc.Op != verbs.OpWriteImm {
		return
	}
	// Replenish the consumed notification receive on the same QP.
	for _, qp := range k.ep.Data {
		if qp.ID() == wc.QP {
			if err := k.ep.repostDataNotifyRecv(qp, wc.WRID); err != nil && !k.closed {
				k.fail(fmt.Errorf("core: reposting notify recv: %w", err))
				return
			}
			break
		}
	}
	k.handleImmNotify(wc)
}

// handleImmNotify processes a WRITE WITH IMMEDIATE arrival: the
// immediate value is the rkey of the consumed region.
func (k *Sink) handleImmNotify(wc verbs.WC) {
	if k.pool == nil {
		k.fail(fmt.Errorf("%w: immediate notification before negotiation", ErrProtocol))
		return
	}
	b := k.pool.byRKey(wc.Imm)
	if b == nil || b.state != BlockWaiting {
		k.fail(fmt.Errorf("%w: immediate for unknown or non-waiting region rkey=%d", ErrProtocol, wc.Imm))
		return
	}
	hdr, err := wire.DecodeBlockHeader(b.mr.ViewLocal(0, wire.BlockHeaderSize))
	if err != nil {
		k.fail(fmt.Errorf("%w: undecodable block header: %v", ErrProtocol, err))
		return
	}
	if int(hdr.PayloadLen)+wire.BlockHeaderSize != wc.ByteLen {
		k.fail(fmt.Errorf("%w: header length %d does not match WRITE length %d",
			ErrProtocol, hdr.PayloadLen, wc.ByteLen))
		return
	}
	k.blockArrived(b, hdr)
}

func (k *Sink) handleCtrl(c *wire.Control) {
	switch c.Type {
	case wire.MsgBlockSizeReq:
		k.handleBlockSize(c)
	case wire.MsgChannelsReq:
		accept := int(c.AssocData) == len(k.ep.Data) && c.AssocData > 0
		flags := uint8(0)
		if accept {
			flags = wire.FlagAccept
		}
		k.sendCtrl(&wire.Control{Type: wire.MsgChannelsResp, Flags: flags, AssocData: c.AssocData})
	case wire.MsgSessionReq:
		k.handleSessionReq(c)
	case wire.MsgMRInfoRequest:
		k.handleMRRequest()
	case wire.MsgBlockComplete:
		k.handleBlockComplete(c)
	case wire.MsgDatasetComplete:
		k.handleDatasetComplete(c)
	case wire.MsgAbort:
		if sess, ok := k.sessions[c.Session]; ok && c.Session != 0 {
			k.finishSession(sess, ErrAborted)
		} else {
			k.fail(ErrAborted)
		}
	}
}

// handleBlockSize accepts a proposed block size and allocates the
// receive pool (sink blocks become the credit supply).
func (k *Sink) handleBlockSize(c *wire.Control) {
	proposed := int(c.AssocData)
	const minBlock, maxBlock = wire.BlockHeaderSize + 1, 256 << 20
	if proposed < minBlock || proposed > maxBlock {
		k.sendCtrl(&wire.Control{Type: wire.MsgBlockSizeResp, AssocData: c.AssocData})
		return
	}
	if k.pool == nil {
		var err error
		shadowAccess := verbs.AccessLocalWrite | verbs.AccessRemoteWrite
		k.pool, err = newPool(k.ep.Dev, k.ep.PD, k.cfg.SinkBlocks, proposed, k.cfg.ModelPayload, shadowAccess)
		if err != nil {
			k.fail(err)
			return
		}
		k.blockSize = proposed
		k.Trace.Emit(trace.Event{Cat: trace.CatNego, Name: "blocksize_accepted",
			V1: int64(proposed), V2: int64(k.cfg.SinkBlocks)})
		// Adopt the source's notification mode; immediate mode needs
		// pre-posted receives on every data channel.
		if c.Flags&wire.FlagImmNotify != 0 {
			k.immMode = true
			if err := k.ep.postDataNotifyRecvs(k.ep.dataDepth); err != nil {
				k.fail(err)
				return
			}
		}
	} else if proposed != k.blockSize {
		// Renegotiating a different size on a live pool is rejected.
		k.sendCtrl(&wire.Control{Type: wire.MsgBlockSizeResp, AssocData: c.AssocData})
		return
	}
	flags := wire.FlagAccept
	if k.immMode {
		flags |= wire.FlagImmNotify
	}
	k.sendCtrl(&wire.Control{Type: wire.MsgBlockSizeResp, Flags: flags, AssocData: c.AssocData})
}

func (k *Sink) handleSessionReq(c *wire.Control) {
	if k.pool == nil {
		k.sendCtrl(&wire.Control{Type: wire.MsgSessionResp})
		return
	}
	k.nextID++
	sess := &sinkSession{
		info:   SessionInfo{ID: k.nextID, Total: int64(c.AssocData), BlockSize: k.blockSize},
		ready:  make(map[uint32]*block),
		writer: nil,
	}
	sess.writer = k.NewWriter(sess.info)
	if os, ok := sess.writer.(OffsetSink); ok && os.OffsetStores() {
		sess.offsetSink = os
		sess.ooo = make(map[uint32]struct{})
	}
	k.Trace.Emit(trace.Event{Cat: trace.CatSession, Name: "session_accept",
		Session: sess.info.ID, V1: sess.info.Total})
	if k.tel != nil {
		sess.telBytes, sess.telBlocks = k.tel.sessionCounters(sess.info.ID)
	}
	k.sessions[sess.info.ID] = sess
	if k.stats.Start == 0 {
		k.stats.Start = k.ep.Loop.Now()
	}
	k.sendCtrl(&wire.Control{Type: wire.MsgSessionResp, Flags: wire.FlagAccept, Session: sess.info.ID})
	// Active feedback begins: push the initial credit window.
	if k.cfg.CreditPolicy == CreditProactive {
		k.grantCredits(k.cfg.InitialCredits, grantInitial)
	}
}

// grantCredits advertises up to n free blocks to the source
// (free → waiting in the sink FSM). reason records which policy leg
// issued the grant for telemetry and tracing.
func (k *Sink) grantCredits(n int, reason grantReason) {
	if n <= 0 || k.pool == nil {
		return
	}
	var now time.Duration
	if k.tel != nil {
		now = k.ep.Loop.Now()
	}
	var credits []wire.Credit
	for len(credits) < n && len(credits) < wire.MaxCreditsPerMsg {
		b := k.pool.get()
		if b == nil {
			break
		}
		b.setState(BlockWaiting)
		b.tAcq = now
		credits = append(credits, wire.Credit{Addr: b.mr.Addr, RKey: b.mr.RKey, Len: uint32(k.blockSize)})
	}
	if len(credits) == 0 {
		return
	}
	k.granted += len(credits)
	invariant.GaugeAdd(k.inv, "granted", 0, int64(len(credits)))
	k.stats.CreditsGranted += int64(len(credits))
	if t := k.tel; t != nil {
		t.grants[reason].Add(int64(len(credits)))
		t.granted.Set(int64(k.granted))
	}
	k.Trace.Emit(trace.Event{Cat: trace.CatCredit, Name: "grant_" + reason.String(),
		V1: int64(len(credits)), V2: int64(k.granted)})
	k.sendCtrl(&wire.Control{Type: wire.MsgMRInfoResponse, Credits: credits})
}

// handleMRRequest must answer as soon as at least one region frees
// (paper: "the responder will be delayed until one becomes available").
func (k *Sink) handleMRRequest() {
	// An explicit request means the source is starving: answer with a
	// full batch regardless of policy.
	batch := k.cfg.OnDemandBatch
	if k.pool == nil || k.pool.countState(BlockFree) == 0 {
		k.pendingReq = true
		return
	}
	k.grantCredits(batch, grantOnDemand)
}

// handleBlockComplete processes a block-transfer completion
// notification: the named region now holds a block (waiting →
// data-ready), and under the proactive policy up to GrantPerConsume
// fresh credits go back immediately.
func (k *Sink) handleBlockComplete(c *wire.Control) {
	if k.pool == nil {
		k.fail(fmt.Errorf("%w: block complete before negotiation", ErrProtocol))
		return
	}
	b := k.pool.byRKey(c.RKey)
	if b == nil || b.state != BlockWaiting {
		k.fail(fmt.Errorf("%w: completion for unknown or non-waiting region rkey=%d", ErrProtocol, c.RKey))
		return
	}
	hdrBytes := b.mr.ViewLocal(0, wire.BlockHeaderSize)
	hdr, err := wire.DecodeBlockHeader(hdrBytes)
	if err != nil {
		k.fail(fmt.Errorf("%w: undecodable block header: %v", ErrProtocol, err))
		return
	}
	if hdr.Session != c.Session || hdr.Seq != c.Seq || hdr.PayloadLen != c.Length {
		k.fail(fmt.Errorf("%w: header/notification mismatch (hdr %d/%d/%d vs msg %d/%d/%d)",
			ErrProtocol, hdr.Session, hdr.Seq, hdr.PayloadLen, c.Session, c.Seq, c.Length))
		return
	}
	k.blockArrived(b, hdr)
}

// blockArrived is the shared tail of both notification paths: the named
// region holds a complete block (waiting → data-ready); replacements
// are granted and in-order delivery advances.
func (k *Sink) blockArrived(b *block, hdr wire.BlockHeader) {
	k.granted--
	invariant.GaugeAdd(k.inv, "granted", 0, -1)
	sess := k.sessions[hdr.Session]
	if sess == nil || sess.finished {
		k.fail(fmt.Errorf("%w: block for unknown session %d", ErrProtocol, hdr.Session))
		return
	}
	if dup := k.noteArrival(sess, hdr.Seq); dup {
		k.fail(fmt.Errorf("%w: duplicate block %d/%d", ErrProtocol, hdr.Session, hdr.Seq))
		return
	}
	b.setState(BlockDataReady)
	b.session, b.seq, b.payloadLen, b.last = hdr.Session, hdr.Seq, int(hdr.PayloadLen), hdr.Last
	b.offset = hdr.Offset
	k.Trace.Emit(trace.Event{Cat: trace.CatBlock, Name: "arrived",
		Session: hdr.Session, Block: hdr.Seq, V1: int64(hdr.PayloadLen)})
	if sess.offsetSink != nil {
		sess.storeQ = append(sess.storeQ, b)
	} else {
		sess.ready[hdr.Seq] = b
	}
	if t := k.tel; t != nil {
		now := k.ep.Loop.Now()
		t.creditLatency.Observe(int64(now - b.tAcq))
		t.reassembly.Observe(int64(len(sess.ready) + len(sess.storeQ)))
		t.blocksArrived.Inc()
		t.bytesArrived.Add(int64(b.payloadLen))
		t.granted.Set(int64(k.granted))
	}
	if hdr.Last {
		sess.haveLast = true
		sess.lastSeq = hdr.Seq
	}
	// Proactive feedback: grant replacements right away; if nothing is
	// free the notification is simply not answered (paper semantics).
	if k.cfg.CreditPolicy == CreditProactive {
		k.grantCredits(k.cfg.GrantPerConsume, grantOnConsume)
	}
	if sess.offsetSink != nil {
		k.pumpStores(sess)
	} else {
		k.deliver(sess)
	}
}

// noteArrival records seq as arrived and reports whether it is a
// duplicate. Both paths keep nextDeliver as the contiguous low-water
// mark of processed-or-arrived sequence numbers; the offset path
// additionally tracks out-of-order arrivals in sess.ooo (the in-order
// path's ready map plays that role implicitly).
func (k *Sink) noteArrival(sess *sinkSession, seq uint32) (dup bool) {
	if sess.offsetSink == nil {
		_, inReady := sess.ready[seq]
		return inReady || seq < sess.nextDeliver
	}
	if seq < sess.nextDeliver {
		return true
	}
	if _, seen := sess.ooo[seq]; seen {
		return true
	}
	if seq == sess.nextDeliver {
		sess.nextDeliver++
		for {
			if _, ok := sess.ooo[sess.nextDeliver]; !ok {
				break
			}
			delete(sess.ooo, sess.nextDeliver)
			sess.nextDeliver++
		}
	} else {
		sess.ooo[seq] = struct{}{}
	}
	return false
}

// deliver hands ready blocks to the writer in sequence order
// (get_ready_blk in the paper's FSM), keeping at most StoreDepth
// stores outstanding.
func (k *Sink) deliver(sess *sinkSession) {
	for sess.storing < k.cfg.StoreDepth {
		b, ok := sess.ready[sess.nextDeliver]
		if !ok {
			break
		}
		delete(sess.ready, sess.nextDeliver)
		// In-order delivery: blocks leave reassembly as 0,1,2,...
		invariant.SeqNext(k.inv, sess.info.ID, b.seq)
		sess.nextDeliver++
		k.issueStore(sess, b)
	}
	k.maybeFinish(sess)
}

// pumpStores is the OffsetSink fast path: arrived blocks go to storage
// in arrival order, up to StoreDepth concurrently, with no reassembly
// wait — the writer places each block by its header offset.
func (k *Sink) pumpStores(sess *sinkSession) {
	for len(sess.storeQ) > 0 && sess.storing < k.cfg.StoreDepth {
		b := sess.storeQ[0]
		sess.storeQ = sess.storeQ[1:]
		k.issueStore(sess, b)
	}
	k.maybeFinish(sess)
}

// issueStore starts one Store (data-ready → storing) and arranges for
// storeDone on the loop.
func (k *Sink) issueStore(sess *sinkSession, b *block) {
	b.setState(BlockStoring)
	if k.tel != nil {
		b.tReady = k.ep.Loop.Now()
	}
	sess.storing++
	invariant.GaugeAdd(k.inv, "storing", int(sess.info.ID), 1)
	if t := k.tel; t != nil {
		t.storesInflight.Set(k.totalStoring())
	}
	hdr := wire.BlockHeader{
		Session: b.session, Seq: b.seq,
		Offset: b.offset, PayloadLen: uint32(b.payloadLen), Last: b.last,
	}
	var payload []byte
	if !k.cfg.ModelPayload {
		payload = b.mr.ViewLocal(wire.BlockHeaderSize, b.payloadLen)
	}
	sess.writer.Store(hdr, payload, b.payloadLen, func(err error) {
		k.ep.Loop.Post(0, func() { k.storeDone(sess, b, err) })
	})
}

// totalStoring sums in-flight stores across sessions (telemetry).
func (k *Sink) totalStoring() int64 {
	var n int64
	for _, sess := range k.sessions {
		n += int64(sess.storing)
	}
	return n
}

// storeDone recycles a consumed block (put_free_blk) and answers any
// starved credit request.
func (k *Sink) storeDone(sess *sinkSession, b *block, err error) {
	if k.closed || k.failed != nil {
		return
	}
	sess.storing--
	invariant.GaugeAdd(k.inv, "storing", int(sess.info.ID), -1)
	if t := k.tel; t != nil {
		t.storesInflight.Set(k.totalStoring())
	}
	if err != nil {
		k.finishSession(sess, fmt.Errorf("core: storing block %d: %w", b.seq, err))
		k.sendCtrl(&wire.Control{Type: wire.MsgAbort, Session: sess.info.ID})
		return
	}
	sess.received += int64(b.payloadLen)
	sess.blocks++
	k.stats.Bytes += int64(b.payloadLen)
	k.stats.Blocks++
	k.stats.End = k.ep.Loop.Now()
	if t := k.tel; t != nil {
		t.storeLatency.Observe(int64(k.stats.End - b.tReady))
		sess.telBytes.Add(int64(b.payloadLen))
		sess.telBlocks.Inc()
	}
	b.setState(BlockFree)
	k.pool.put(b)
	if k.pendingReq {
		k.pendingReq = false
		k.handleMRRequest()
	} else if k.cfg.CreditPolicy == CreditProactive && !k.cfg.NoGrantOnFree && len(k.sessions) > 0 {
		// Active feedback: once the window has ramped to the whole
		// pool, consume-time grants find nothing free, so re-advertise
		// each block the moment it frees. Without this the source
		// burns its stash and degenerates into explicit request
		// round-trips.
		k.grantCredits(1, grantOnFree)
	}
	// A freed store slot may unblock queued or ready blocks.
	if sess.offsetSink != nil {
		k.pumpStores(sess)
	} else {
		k.deliver(sess)
	}
}

func (k *Sink) handleDatasetComplete(c *wire.Control) {
	sess := k.sessions[c.Session]
	if sess == nil {
		return
	}
	sess.completeRx = true
	k.maybeFinish(sess)
}

// maybeFinish acknowledges a session once the complete in-order stream
// has been stored.
func (k *Sink) maybeFinish(sess *sinkSession) {
	if sess.finished || !sess.completeRx || !sess.haveLast {
		return
	}
	// nextDeliver is the contiguous low-water mark on both paths: past
	// lastSeq means every block arrived (offset path) or was delivered
	// (in-order path); pending stores and undrained queues still block.
	if sess.nextDeliver <= sess.lastSeq || sess.storing > 0 || len(sess.ready) > 0 || len(sess.storeQ) > 0 {
		return
	}
	k.Trace.Emit(trace.Event{Cat: trace.CatSession, Name: "session_complete",
		Session: sess.info.ID, V1: sess.received, V2: sess.blocks})
	// Fire OnSessionDone only once the acknowledgment's send completion
	// arrives: a server that closes the connection on session-done must
	// not strand the ack.
	sess.finished = true // no double-finish via other paths
	k.sendCtrlThen(&wire.Control{Type: wire.MsgDatasetCompleteAck, Session: sess.info.ID}, func() {
		sess.finished = false
		k.finishSession(sess, nil)
	})
}

func (k *Sink) finishSession(sess *sinkSession, err error) {
	if sess.finished {
		return
	}
	sess.finished = true
	delete(k.sessions, sess.info.ID)
	invariant.StreamReset(k.inv, sess.info.ID)
	// Blocks still held by an aborted session return to the pool
	// (data-ready → free, the abort shortcut past Storing).
	for _, b := range sess.ready {
		b.setState(BlockFree)
		k.pool.put(b)
	}
	for _, b := range sess.storeQ {
		b.setState(BlockFree)
		k.pool.put(b)
	}
	sess.ready = nil
	sess.storeQ = nil
	sess.ooo = nil
	if k.OnSessionDone != nil {
		k.OnSessionDone(sess.info, TransferResult{
			Session: sess.info.ID, Bytes: sess.received, Blocks: sess.blocks, Err: err,
		})
	}
}

func (k *Sink) fail(err error) {
	if k.failed != nil || k.closed {
		return
	}
	k.failed = err
	k.Trace.EmitErr(trace.CatError, "conn_failed", err)
	k.sendCtrl(&wire.Control{Type: wire.MsgAbort})
	for _, sess := range k.sessions {
		k.finishSession(sess, err)
	}
	if k.OnError != nil {
		k.OnError(err)
	}
}
