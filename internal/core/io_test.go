package core

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"rftp/internal/fabric/chanfabric"
	"rftp/internal/hostmodel"
	"rftp/internal/sim"
	"rftp/internal/wire"
)

func TestReaderSourceFullBlocks(t *testing.T) {
	data := bytes.Repeat([]byte("x"), 100)
	src := ReaderSource{R: bytes.NewReader(data)}
	buf := make([]byte, 40)
	var got []int
	var eofs []bool
	for i := 0; i < 3; i++ {
		done := false
		src.Load(buf, 40, func(n int, eof bool, err error) {
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, n)
			eofs = append(eofs, eof)
			done = true
		})
		if !done {
			t.Fatal("ReaderSource.Load is synchronous; done not called")
		}
	}
	if got[0] != 40 || got[1] != 40 || got[2] != 20 {
		t.Fatalf("loads = %v", got)
	}
	if eofs[0] || eofs[1] || !eofs[2] {
		t.Fatalf("eofs = %v", eofs)
	}
}

func TestReaderSourceExactEOF(t *testing.T) {
	src := ReaderSource{R: bytes.NewReader(make([]byte, 40))}
	buf := make([]byte, 40)
	src.Load(buf, 40, func(n int, eof bool, err error) {
		if n != 40 || eof || err != nil {
			t.Fatalf("first load: n=%d eof=%v err=%v", n, eof, err)
		}
	})
	// The next read returns 0, EOF.
	src.Load(buf, 40, func(n int, eof bool, err error) {
		if n != 0 || !eof || err != nil {
			t.Fatalf("final load: n=%d eof=%v err=%v", n, eof, err)
		}
	})
}

type errReader struct{ err error }

func (r errReader) Read([]byte) (int, error) { return 0, r.err }

func TestReaderSourcePropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	src := ReaderSource{R: errReader{err: boom}}
	src.Load(make([]byte, 8), 8, func(n int, eof bool, err error) {
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestWriterSinkAndDiscard(t *testing.T) {
	var buf bytes.Buffer
	ws := WriterSink{W: &buf}
	ws.Store(wire.BlockHeader{}, []byte("payload"), 7, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	if buf.String() != "payload" {
		t.Fatalf("wrote %q", buf.String())
	}
	DiscardSink{}.Store(wire.BlockHeader{}, []byte("x"), 1, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, io.ErrShortWrite }

func TestWriterSinkPropagatesErrors(t *testing.T) {
	WriterSink{W: failWriter{}}.Store(wire.BlockHeader{}, []byte("x"), 1, func(err error) {
		if err != io.ErrShortWrite {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestModelSourceProducesExactTotal(t *testing.T) {
	s := sim.New(1)
	h := hostmodel.NewHost(s, "h", 4, hostmodel.DefaultParams())
	loader := h.NewThread("loader")
	src := &ModelSource{Total: 250, Loader: loader, NsPerByte: 1}
	var produced int
	var lastEOF bool
	for i := 0; i < 3; i++ {
		src.Load(nil, 100, func(n int, eof bool, err error) {
			produced += n
			lastEOF = eof
		})
	}
	s.RunAll()
	if produced != 250 {
		t.Fatalf("produced %d, want 250", produced)
	}
	if !lastEOF {
		t.Fatal("final load not marked EOF")
	}
	// The loader thread was charged 250ns.
	if loader.Busy() != 250*time.Nanosecond {
		t.Fatalf("loader busy = %v", loader.Busy())
	}
}

func TestModelSinkChargesStorer(t *testing.T) {
	s := sim.New(1)
	h := hostmodel.NewHost(s, "h", 4, hostmodel.DefaultParams())
	storer := h.NewThread("storer")
	sink := &ModelSink{Storer: storer, NsPerByte: 2, PerBlock: 10 * time.Nanosecond}
	done := 0
	sink.Store(wire.BlockHeader{}, nil, 100, func(err error) { done++ })
	sink.Store(wire.BlockHeader{}, nil, 50, func(err error) { done++ })
	s.RunAll()
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	if sink.Stored() != 150 {
		t.Fatalf("stored = %d", sink.Stored())
	}
	want := 2*10*time.Nanosecond + 300*time.Nanosecond
	if storer.Busy() != want {
		t.Fatalf("storer busy = %v, want %v", storer.Busy(), want)
	}
}

func TestLoopSourceMarshalsCompletion(t *testing.T) {
	loop := chanfabric.NewLoop("io-test")
	defer loop.Stop()
	inner := ReaderSource{R: strings.NewReader("abcdef")}
	src := LoopSource{Inner: inner, Loop: loop}
	ch := make(chan int, 1)
	buf := make([]byte, 6)
	src.Load(buf, 6, func(n int, eof bool, err error) { ch <- n })
	select {
	case n := <-ch:
		if n != 6 || string(buf) != "abcdef" {
			t.Fatalf("n=%d buf=%q", n, buf)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("LoopSource completion never arrived")
	}
}

func TestEndpointCtrlRingSized(t *testing.T) {
	fab := chanfabric.New()
	dev := fab.NewDevice("d")
	loop := chanfabric.NewLoop("ep-test")
	defer loop.Stop()
	ep, err := NewEndpoint(dev, loop, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ep.ctrlDepth != 216 { // 2*100+16
		t.Fatalf("ctrlDepth = %d", ep.ctrlDepth)
	}
	if len(ep.ctrlRecvMRs) != ep.ctrlDepth {
		t.Fatalf("recv ring = %d buffers", len(ep.ctrlRecvMRs))
	}
	if len(ep.Data) != 2 {
		t.Fatalf("data QPs = %d", len(ep.Data))
	}
	ep.Close()
	if err := ep.repostCtrlRecv(0); err != ErrClosed {
		t.Fatalf("repost after close: %v", err)
	}
	ep.Close() // idempotent
}

func TestEndpointMinimumCtrlDepth(t *testing.T) {
	fab := chanfabric.New()
	dev := fab.NewDevice("d")
	loop := chanfabric.NewLoop("ep-test2")
	defer loop.Stop()
	ep, err := NewEndpoint(dev, loop, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ep.ctrlDepth != 64 {
		t.Fatalf("ctrlDepth floor = %d, want 64", ep.ctrlDepth)
	}
}
