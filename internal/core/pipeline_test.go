package core

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"rftp/internal/fabric/chanfabric"
	"rftp/internal/verbs"
	"rftp/internal/wire"
)

// atSource is a real-bytes offset-addressed source for pipeline tests:
// LoadAt is stateless per the BlockSourceAt contract, so completions
// may be held, reordered, or overlapped freely.
type atSource struct {
	data []byte
	cur  int64 // serial Load cursor
}

func (s *atSource) Load(p []byte, capacity int, done func(int, bool, error)) {
	off := s.cur
	s.cur += int64(capacity)
	s.LoadAt(p, capacity, uint64(off), done)
}

func (s *atSource) LoadAt(p []byte, capacity int, off uint64, done func(int, bool, error)) {
	rem := int64(len(s.data)) - int64(off)
	if rem <= 0 {
		done(0, true, nil)
		return
	}
	n := int64(capacity)
	if n > rem {
		n = rem
	}
	copy(p[:n], s.data[off:int64(off)+n])
	done(int(n), int64(off)+n >= int64(len(s.data)), nil)
}

// oooSource holds load completions and releases them in reverse arrival
// order once flushAt have accumulated (or an EOF load arrives), forcing
// maximal out-of-order completion under the pipelined load path.
type oooSource struct {
	inner   *atSource
	flushAt int

	mu      sync.Mutex
	pending []func()
	held    int // max completions held at once (proves pipelining)
}

func (s *oooSource) Load(p []byte, c int, done func(int, bool, error)) { s.inner.Load(p, c, done) }

func (s *oooSource) LoadAt(p []byte, c int, off uint64, done func(int, bool, error)) {
	s.inner.LoadAt(p, c, off, func(n int, eof bool, err error) {
		s.mu.Lock()
		s.pending = append(s.pending, func() { done(n, eof, err) })
		if len(s.pending) > s.held {
			s.held = len(s.pending)
		}
		var flush []func()
		if len(s.pending) >= s.flushAt || eof {
			flush = s.pending
			s.pending = nil
		}
		s.mu.Unlock()
		for i := len(flush) - 1; i >= 0; i-- {
			flush[i]()
		}
	})
}

// offsetBufSink is an OffsetSink recording concurrency: stores place
// payload by header offset and complete after a delay on their own
// goroutine, so several run at once up to the sink's StoreDepth.
type offsetBufSink struct {
	mu       sync.Mutex
	buf      []byte
	inflight int
	maxInfl  int
	delay    time.Duration
}

func (s *offsetBufSink) OffsetStores() bool { return true }

func (s *offsetBufSink) Store(hdr wire.BlockHeader, payload []byte, modelLen int, done func(error)) {
	s.mu.Lock()
	s.inflight++
	if s.inflight > s.maxInfl {
		s.maxInfl = s.inflight
	}
	copy(s.buf[hdr.Offset:], payload)
	s.mu.Unlock()
	go func() {
		time.Sleep(s.delay)
		s.mu.Lock()
		s.inflight--
		s.mu.Unlock()
		done(nil)
	}()
}

// runPipeTransfer drives one session of src through p into sink and
// waits for both ends to finish.
func runPipeTransfer(t *testing.T, p *chanPipe, src BlockSource, total int64, sink BlockSink) {
	t.Helper()
	done := make(chan error, 2)
	p.sink.NewWriter = func(info SessionInfo) BlockSink { return sink }
	p.sink.OnSessionDone = func(info SessionInfo, r TransferResult) { done <- r.Err }
	p.srcLoop.Post(0, func() {
		p.source.Start(func(err error) {
			if err != nil {
				done <- err
				done <- err
				return
			}
			p.source.Transfer(src, total, func(r TransferResult) { done <- r.Err })
		})
	})
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("transfer error: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("transfer timed out")
		}
	}
}

// TestPipelinedLoadsOutOfOrderCompletion: loads complete in reverse
// batches, yet seq/offset assignment at issue time keeps the delivered
// stream intact, and the source genuinely pipelines (LoadDepth loads
// held at once).
func TestPipelinedLoadsOutOfOrderCompletion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 32 << 10
	cfg.IODepth = 8
	cfg.LoadDepth = 8
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)
	data := randBytes(2<<20+4321, 11)
	src := &oooSource{inner: &atSource{data: data}, flushAt: 4}

	var mu sync.Mutex
	var out bytes.Buffer
	runPipeTransfer(t, p, src, int64(len(data)), lockedWriterSink{w: &out, mu: &mu})

	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatalf("out-of-order loads corrupted stream: %d vs %d bytes", out.Len(), len(data))
	}
	if src.held < 4 {
		t.Fatalf("source held %d concurrent loads, want >= 4 (pipelining not engaged)", src.held)
	}
}

// TestOffsetSinkFastPath: an OffsetSink receives stores as blocks
// arrive (no reassembly wait), concurrently but never above StoreDepth,
// and the offset-placed result is byte-identical.
func TestOffsetSinkFastPath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 32 << 10
	cfg.IODepth = 8
	cfg.LoadDepth = 8
	cfg.StoreDepth = 4
	cfg.SinkBlocks = 32
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)
	data := randBytes(3<<20+777, 12)
	sink := &offsetBufSink{buf: make([]byte, len(data)), delay: time.Millisecond}

	runPipeTransfer(t, p, &atSource{data: data}, int64(len(data)), sink)

	sink.mu.Lock()
	defer sink.mu.Unlock()
	if !bytes.Equal(sink.buf, data) {
		t.Fatal("offset fast path corrupted data")
	}
	if sink.maxInfl > cfg.StoreDepth {
		t.Fatalf("observed %d concurrent stores, StoreDepth = %d", sink.maxInfl, cfg.StoreDepth)
	}
	if sink.maxInfl < 2 {
		t.Fatalf("observed %d concurrent stores, want >= 2 (fast path not engaged)", sink.maxInfl)
	}
}

// TestLoadDepthOneEquivalence: an offset-addressed source at
// LoadDepth=1 behaves exactly like the serial path — same bytes, same
// block count.
func TestLoadDepthOneEquivalence(t *testing.T) {
	data := randBytes(1<<20+99, 13)
	blocks := func(depth int, src BlockSource) int64 {
		cfg := DefaultConfig()
		cfg.BlockSize = 64 << 10
		cfg.IODepth = 8
		cfg.LoadDepth = depth
		p := newChanPipe(t, chanfabric.Shaping{}, cfg)
		var mu sync.Mutex
		var out bytes.Buffer
		runPipeTransfer(t, p, src, int64(len(data)), lockedWriterSink{w: &out, mu: &mu})
		mu.Lock()
		defer mu.Unlock()
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("depth-%d transfer corrupted", depth)
		}
		stCh := make(chan Stats, 1)
		p.srcLoop.Post(0, func() { stCh <- p.source.Stats() })
		return (<-stCh).Blocks
	}
	serial := blocks(1, ReaderSource{R: bytes.NewReader(data)})
	depthOne := blocks(1, &atSource{data: data})
	if serial != depthOne {
		t.Fatalf("LoadDepth=1 sent %d blocks, serial source sent %d", depthOne, serial)
	}
}

// TestOffsetSourceEmptyDataset: the seq-0 exception — over-issue
// discard must not swallow the empty last block an empty dataset sends.
func TestOffsetSourceEmptyDataset(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 32 << 10
	cfg.LoadDepth = 8
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)
	var mu sync.Mutex
	var out bytes.Buffer
	runPipeTransfer(t, p, &atSource{data: nil}, 0, lockedWriterSink{w: &out, mu: &mu})
	mu.Lock()
	defer mu.Unlock()
	if out.Len() != 0 {
		t.Fatalf("empty dataset produced %d bytes", out.Len())
	}
}

// flakyQP rejects a bounded number of write posts with
// ErrSendQueueFull, but only while at least one accepted write is still
// outstanding — the real-world invariant behind that error (a full
// queue implies completions are coming). Regression test for the old
// recovery hack that corrupted the per-channel inflight count.
type flakyQP struct {
	verbs.QP
	rejectBudget int
	outstanding  int
	rejected     int
}

func (q *flakyQP) PostSend(wr *verbs.SendWR) error {
	if wr.Op == verbs.OpWrite || wr.Op == verbs.OpWriteImm {
		if q.rejected < q.rejectBudget && q.outstanding > 0 {
			q.rejected++
			return verbs.ErrSendQueueFull
		}
		if err := q.QP.PostSend(wr); err != nil {
			return err
		}
		q.outstanding++
		return nil
	}
	// Not a repost: the branch above returns before reaching here, so
	// exactly one PostSend runs per call.
	//lint:allow bufownership mutually exclusive branches, only one post executes per call
	return q.QP.PostSend(wr)
}

func TestSendQueueFullRecovery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 32 << 10
	cfg.IODepth = 8
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)

	// Interpose on the data QP and its completion stream. Both PostSend
	// and the CQ handler run on the source loop, so no locking.
	q := &flakyQP{QP: p.source.ep.Data[0], rejectBudget: 3}
	p.source.ep.Data[0] = q
	shard := p.source.shards[0]
	p.source.ep.DataCQ.SetHandler(func(wc verbs.WC) {
		if wc.Op == verbs.OpWrite || wc.Op == verbs.OpWriteImm {
			q.outstanding--
		}
		shard.onDataWC(wc)
	})

	data := randBytes(2<<20, 14)
	var mu sync.Mutex
	var out bytes.Buffer
	runPipeTransfer(t, p, ReaderSource{R: bytes.NewReader(data)}, int64(len(data)),
		lockedWriterSink{w: &out, mu: &mu})

	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("transfer corrupted after send-queue-full recovery")
	}
	if q.rejected != 3 {
		t.Fatalf("QP rejected %d posts, want 3 (recovery path not exercised)", q.rejected)
	}
	satCh := make(chan bool, 1)
	p.srcLoop.Post(0, func() { satCh <- p.source.chSaturated[0] })
	if <-satCh {
		t.Fatal("channel still marked saturated after recovery")
	}
	inflCh := make(chan int, 1)
	p.srcLoop.Post(0, func() { inflCh <- p.source.chInflight[0] })
	if n := <-inflCh; n != 0 {
		t.Fatalf("chInflight[0] = %d after drain, want 0 (count corrupted)", n)
	}
}
