package core

// Span and stall-attribution wiring: AttachSpans mirrors
// AttachTelemetry (resolve once, nil when detached) and hands every
// pool block a recorder handle so setState can stamp transitions. The
// stall trackers are fed from the pump tails, where the endpoint's
// ledgers (loaded queue, credit stash, load/store inflight, reassembly
// maps) describe exactly which resource is binding right now.

import (
	"rftp/internal/spans"
	"rftp/internal/telemetry"
)

// AttachSpans wires the source to a lifecycle span recorder and stall
// tracker registered under reg. sample records 1-in-sample block
// lifecycles; sample < 1 disables span recording (leaving a single nil
// check per transition) while stall attribution stays on. Call before
// Start, from the loop or while it is not running.
func (s *Source) AttachSpans(reg *telemetry.Registry, sample int) {
	clock := s.ep.Loop.Now
	s.spans = spans.New(spans.KindSource, spans.Config{
		Sample:   sample,
		Slots:    len(s.pool.blocks),
		Clock:    clock,
		Registry: reg,
	})
	s.stalls = spans.NewStallTracker(reg, clock)
	for _, b := range s.pool.blocks {
		b.spans = s.spans
	}
}

// Spans returns the attached span recorder (nil when detached or
// disabled by sampling).
func (s *Source) Spans() *spans.Recorder { return s.spans }

// noteStall classifies the source pipeline at the end of a pump step:
// which single resource, if available now, would let it post another
// block. Loaded blocks with an empty credit stash are credit
// starvation; loaded blocks despite credits mean every channel is at
// depth or saturated. With nothing loaded, outstanding loads only
// indicate a storage bottleneck when a session has actually hit its
// load-depth cap — at line rate the pool is drained by blocks waiting
// on WRITE acks and every freed block instantly re-issues as a load,
// so a part-filled load window with the pool held on the wire is
// wire-bound, not disk-bound.
func (s *Source) noteStall() {
	if s.stalls == nil {
		return
	}
	loads := s.totalLoads()
	queuedPush, queuedPull := 0, 0
	for _, sess := range s.rrSessions {
		if sess.mode == ModePull && !sess.switching {
			queuedPull += len(sess.loadedQ)
		} else {
			queuedPush += len(sess.loadedQ)
		}
	}
	var c spans.Cause
	switch {
	case queuedPush > 0 && s.creditCount == 0:
		c = spans.CauseCreditStarved
	case queuedPush > 0:
		c = spans.CauseSendQueueSaturated
	case queuedPull > 0:
		// Loaded blocks on a pull session wait only on the advertise
		// window: the sink has not yet retired enough READs for the
		// adaptive window to admit more advertisements.
		c = spans.CauseReadInflightFull
	case loads > 0 && s.loadsAtDepth():
		c = spans.CauseLoadPending
	case s.totalInflight() > 0:
		// chInflight counts blocks handed to the shards (sending or
		// waiting on the wire) and is control-owned; inspecting block
		// states here would race with the shards that own them.
		c = spans.CauseWireBound
	case s.advertCount > 0:
		// Everything loaded is advertised and the sink holds the ball:
		// the pipeline is bound by the READs it has yet to issue or
		// complete against our exposed regions.
		c = spans.CauseReadWireBound
	case loads > 0:
		c = spans.CauseLoadPending
	}
	s.stalls.Note(c)
}

// loadsAtDepth reports whether any active session has its full
// load-depth window outstanding against storage, i.e. the disk is the
// resource the pipeline is genuinely waiting on.
func (s *Source) loadsAtDepth() bool {
	for _, sess := range s.rrSessions {
		if sess.eof || sess.aborting {
			continue
		}
		if sess.loads >= sess.loadDepth(&s.cfg) {
			return true
		}
	}
	return false
}

// AttachSpans wires the sink to a lifecycle span recorder and stall
// tracker registered under reg, with the same sampling contract as the
// source's. The sink's pool does not exist until block-size
// negotiation, so attachment is deferred to pool creation when needed.
func (k *Sink) AttachSpans(reg *telemetry.Registry, sample int) {
	k.spanReg, k.spanSample = reg, sample
	k.stalls = spans.NewStallTracker(reg, k.ep.Loop.Now)
	if k.pool != nil {
		k.attachPoolSpans()
	}
}

// attachPoolSpans builds the sink recorder once the pool exists.
func (k *Sink) attachPoolSpans() {
	k.spans = spans.New(spans.KindSink, spans.Config{
		Sample:   k.spanSample,
		Slots:    len(k.pool.blocks),
		Clock:    k.ep.Loop.Now,
		Registry: k.spanReg,
	})
	for _, b := range k.pool.blocks {
		b.spans = k.spans
	}
}

// Spans returns the attached span recorder (nil when detached,
// disabled, or before block-size negotiation).
func (k *Sink) Spans() *spans.Recorder { return k.spans }

// noteStall classifies the sink pipeline after arrivals and store
// completions: a session with a backlog and all store slots busy is
// store-bound; an in-order session holding out-of-order blocks it
// cannot deliver is waiting on a reassembly gap.
func (k *Sink) noteStall() {
	if k.stalls == nil {
		return
	}
	var c spans.Cause
	for _, sess := range k.sessions {
		if sess.finished {
			continue
		}
		backlog := len(sess.ready) + len(sess.storeQ)
		if backlog > 0 && sess.storing >= k.cfg.StoreDepth {
			c = spans.CauseStorePending
			break
		}
		if sess.offsetSink == nil && len(sess.ready) > 0 {
			if _, ok := sess.ready[sess.nextDeliver]; !ok {
				// Keep scanning: a store-bound session outranks a gap.
				c = spans.CauseReassemblyGap
			}
		}
	}
	if c == spans.CauseNone && k.pool != nil && len(k.pool.free) > 0 {
		// Free memory exists, yet some tenant holds zero credits: the
		// binding resource is a scheduling slot, not the pool. Pull
		// sessions hold no credits by design, so the scan skips them.
		for _, sess := range k.schedOrder {
			if !sess.finished && !sess.haveLast && sess.granted == 0 && sess.mode != ModePull {
				c = spans.CauseSchedWait
				break
			}
		}
	}
	if c == spans.CauseNone {
		// Pull-side diagnoses, least to most upstream: advertisements
		// queued but no free block or READ slot; READs on the wire; or a
		// live pull session with resources to spare waiting on the
		// source to advertise.
		fetchBacklog, pullLive := 0, false
		for _, sess := range k.sessions {
			if sess.finished || sess.mode != ModePull {
				continue
			}
			fetchBacklog += len(sess.fetchQ)
			if !sess.haveLast {
				pullLive = true
			}
		}
		switch {
		case fetchBacklog > 0:
			c = spans.CauseReadInflightFull
		case k.readsInflight > 0:
			c = spans.CauseReadWireBound
		case pullLive && k.pool != nil && len(k.pool.free) > 0:
			c = spans.CauseAdvertStarved
		}
	}
	k.stalls.Note(c)
}
