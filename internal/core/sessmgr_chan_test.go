package core

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rftp/internal/fabric/chanfabric"
	"rftp/internal/wire"
)

// sinkLedger is the sink-side accounting snapshot the churn tests poll
// for; all fields are read on the sink loop.
type sinkLedger struct {
	granted  int
	free     int
	sessions int
	zombies  int
	stats    Stats
}

func (p *chanPipe) readLedger() sinkLedger {
	ch := make(chan sinkLedger, 1)
	p.dstLoop.Post(0, func() {
		ch <- sinkLedger{
			granted:  p.sink.granted,
			free:     p.sink.pool.countState(BlockFree),
			sessions: len(p.sink.sessions),
			zombies:  len(p.sink.zombies),
			stats:    p.sink.stats,
		}
	})
	return <-ch
}

// awaitCleanLedger polls until every session (and zombie) is retired
// and the whole pool is free with nothing granted — the reclaim-on-
// close invariant under churn.
func awaitCleanLedger(t *testing.T, p *chanPipe, sinkBlocks int) sinkLedger {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var led sinkLedger
	for {
		led = p.readLedger()
		if led.sessions == 0 && led.zombies == 0 &&
			led.granted == 0 && led.free == sinkBlocks {
			return led
		}
		if time.Now().After(deadline) {
			t.Fatalf("sink ledger never settled: granted=%d free=%d/%d sessions=%d zombies=%d",
				led.granted, led.free, sinkBlocks, led.sessions, led.zombies)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// abortTripSink wraps a session's BlockSink and fires trip once the
// session has stored at least `after` payload bytes — an abort planted
// genuinely mid-flight rather than at a timer's guess.
type abortTripSink struct {
	inner BlockSink
	after int64
	seen  *int64
	once  *sync.Once
	trip  func()
}

func (s abortTripSink) Store(hdr wire.BlockHeader, payload []byte, modelLen int, done func(error)) {
	if atomic.AddInt64(s.seen, int64(len(payload))) >= s.after {
		s.once.Do(s.trip)
	}
	s.inner.Store(hdr, payload, modelLen, done)
}

// TestChanSessionChurnWithAbort races k tenants over one shared
// connection on the real-goroutine fabric: staggered opens (the
// admission queue fills and drains while earlier tenants are already
// streaming), one session aborted mid-flight, and closes landing in
// whatever order the transfers finish. Survivors must deliver their
// payloads byte-for-byte, the aborted session must surface ErrAborted
// on both ends, and once the last session retires the sink pool must
// be whole again: nothing granted, every block free, no zombies.
func TestChanSessionChurnWithAbort(t *testing.T) {
	const k = 8
	cfg := DefaultConfig()
	cfg.BlockSize = 32 << 10
	cfg.Channels = 2
	cfg.IODepth = 8
	cfg.SinkBlocks = 64
	cfg.MaxSessions = 4 // half the tenants wait in the admission queue
	cfg.SessionQueue = k
	ncfg, err := cfg.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	p := newChanPipe(t, chanfabric.Shaping{}, cfg)

	// Session ids are assigned in request order (ordered control QP,
	// FIFO admission queue), so transfer i carries session id i+1. The
	// first session gets the biggest payload and is the abort target:
	// it is guaranteed still in flight when the trip threshold lands.
	const abortID = uint32(1)
	inputs := make([][]byte, k)
	inputs[0] = randBytes(6<<20, 500)
	for i := 1; i < k; i++ {
		inputs[i] = randBytes(192<<10+i*7919, int64(500+i))
	}

	var mu sync.Mutex
	outputs := map[uint32]*bytes.Buffer{}
	sinkErr := map[uint32]error{}
	srcErr := map[uint32]error{}
	done := make(chan struct{}, 4*k)
	var abortSeen int64
	abortOnce := &sync.Once{}
	p.sink.NewWriter = func(info SessionInfo) BlockSink {
		mu.Lock()
		buf := &bytes.Buffer{}
		outputs[info.ID] = buf
		mu.Unlock()
		var bs BlockSink = lockedWriterSink{w: buf, mu: &mu}
		if info.ID == abortID {
			bs = abortTripSink{
				inner: bs, after: 256 << 10, seen: &abortSeen, once: abortOnce,
				trip: func() {
					p.srcLoop.Post(0, func() { p.source.Abort(abortID) })
				},
			}
		}
		return bs
	}
	p.sink.OnSessionDone = func(info SessionInfo, r TransferResult) {
		mu.Lock()
		sinkErr[info.ID] = r.Err
		mu.Unlock()
		done <- struct{}{}
	}

	ready := make(chan error, 1)
	p.srcLoop.Post(0, func() { p.source.Start(func(err error) { ready <- err }) })
	if err := <-ready; err != nil {
		t.Fatalf("nego: %v", err)
	}
	for i := 0; i < k; i++ {
		data := inputs[i]
		p.srcLoop.Post(0, func() {
			p.source.Transfer(ReaderSource{R: bytes.NewReader(data)}, int64(len(data)),
				func(r TransferResult) {
					mu.Lock()
					srcErr[r.Session] = r.Err
					mu.Unlock()
					done <- struct{}{}
				})
		})
		time.Sleep(time.Duration(1+i%3) * time.Millisecond) // staggered opens
	}
	for i := 0; i < 2*k; i++ {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("session churn timed out after %d/%d completions", i, 2*k)
		}
	}

	led := awaitCleanLedger(t, p, ncfg.SinkBlocks)

	mu.Lock()
	defer mu.Unlock()
	if len(outputs) != k {
		t.Fatalf("sink saw %d sessions, want %d", len(outputs), k)
	}
	for i := 0; i < k; i++ {
		id := uint32(i + 1)
		in, out := inputs[i], outputs[id]
		if out == nil {
			t.Fatalf("session %d never opened at the sink", id)
		}
		if id == abortID {
			if !errors.Is(srcErr[id], ErrAborted) {
				t.Errorf("aborted session source err = %v, want ErrAborted", srcErr[id])
			}
			if !errors.Is(sinkErr[id], ErrAborted) {
				t.Errorf("aborted session sink err = %v, want ErrAborted", sinkErr[id])
			}
			if got := out.Bytes(); len(got) >= len(in) || !bytes.Equal(got, in[:len(got)]) {
				t.Errorf("aborted session stored %d bytes that are not a strict prefix of its input", len(got))
			}
			continue
		}
		if srcErr[id] != nil || sinkErr[id] != nil {
			t.Errorf("survivor %d errs: src=%v sink=%v", id, srcErr[id], sinkErr[id])
		}
		if !bytes.Equal(out.Bytes(), in) {
			t.Errorf("survivor %d payload corrupted: %d bytes out, %d in", id, out.Len(), len(in))
		}
	}
	// Credit conservation across the churn, abort included: every
	// granted credit either landed a block or was reclaimed.
	if st := led.stats; st.CreditsGranted != st.Blocks+st.CreditsReclaimed {
		t.Errorf("credit ledger leaked: granted %d != blocks %d + reclaimed %d",
			st.CreditsGranted, st.Blocks, st.CreditsReclaimed)
	}
}

// TestChanWeightedGrantConservationProperty is the scheduler's
// conservation property under arbitrary tenant weights: for random
// weight vectors, tenant counts, and payload sizes, every credit the
// per-tenant DRR scheduler grants is either consumed by a landed block
// or reclaimed at session close — and the pool reassembles exactly.
func TestChanWeightedGrantConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2027))
	for it := 0; it < 6; it++ {
		cfg := DefaultConfig()
		cfg.BlockSize = 8 << 10 << rng.Intn(2)
		cfg.Channels = 1 + rng.Intn(3)
		cfg.IODepth = 4 + rng.Intn(8)
		cfg.SinkBlocks = 32 + rng.Intn(64)
		n := 2 + rng.Intn(5)
		cfg.TenantWeights = make([]int, 1+rng.Intn(n))
		for i := range cfg.TenantWeights {
			cfg.TenantWeights[i] = 1 + rng.Intn(4)
		}
		if rng.Intn(2) == 1 {
			cfg.MaxSessions = 1 + rng.Intn(n)
			cfg.SessionQueue = n
		}
		inputs := make([][]byte, n)
		for i := range inputs {
			inputs[i] = randBytes(32<<10+rng.Intn(512<<10), int64(it*100+i))
		}
		ncfg, err := cfg.Normalize()
		if err != nil {
			t.Fatal(err)
		}

		t.Run("", func(t *testing.T) {
			p := newChanPipe(t, chanfabric.Shaping{}, cfg)
			var mu sync.Mutex
			outputs := map[uint32]*bytes.Buffer{}
			done := make(chan error, 2*n)
			p.sink.NewWriter = func(info SessionInfo) BlockSink {
				mu.Lock()
				buf := &bytes.Buffer{}
				outputs[info.ID] = buf
				mu.Unlock()
				return lockedWriterSink{w: buf, mu: &mu}
			}
			p.sink.OnSessionDone = func(info SessionInfo, r TransferResult) { done <- r.Err }
			p.srcLoop.Post(0, func() {
				p.source.Start(func(err error) {
					if err != nil {
						for i := 0; i < 2*n; i++ {
							done <- err
						}
						return
					}
					for i := 0; i < n; i++ {
						data := inputs[i]
						p.source.Transfer(ReaderSource{R: bytes.NewReader(data)}, int64(len(data)),
							func(r TransferResult) { done <- r.Err })
					}
				})
			})
			for i := 0; i < 2*n; i++ {
				select {
				case err := <-done:
					if err != nil {
						t.Fatalf("case %d (weights=%v, n=%d): %v", it, cfg.TenantWeights, n, err)
					}
				case <-time.After(30 * time.Second):
					t.Fatalf("case %d (weights=%v, n=%d): timed out", it, cfg.TenantWeights, n)
				}
			}
			led := awaitCleanLedger(t, p, ncfg.SinkBlocks)
			st := led.stats
			if st.CreditsGranted != st.Blocks+st.CreditsReclaimed {
				t.Fatalf("case %d (weights=%v, n=%d): granted %d != blocks %d + reclaimed %d",
					it, cfg.TenantWeights, n, st.CreditsGranted, st.Blocks, st.CreditsReclaimed)
			}
			var want, got int64
			mu.Lock()
			for _, in := range inputs {
				want += int64(len(in))
			}
			for _, out := range outputs {
				got += int64(out.Len())
			}
			mu.Unlock()
			if got != want {
				t.Fatalf("case %d: stored %d bytes, want %d", it, got, want)
			}
		})
	}
}
