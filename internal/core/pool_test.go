package core

import (
	"testing"
	"testing/quick"

	"rftp/internal/fabric/chanfabric"
	"rftp/internal/verbs"
	"rftp/internal/wire"
)

func newTestPool(t *testing.T, n, size int) *pool {
	t.Helper()
	dev := chanfabric.New().NewDevice("t")
	p, err := newPool(dev, dev.AllocPD(), n, size, false, verbs.AccessLocalWrite, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPoolGetPut(t *testing.T) {
	p := newTestPool(t, 4, 4096)
	var got []*block
	for i := 0; i < 4; i++ {
		b := p.get()
		if b == nil {
			t.Fatalf("pool dry at %d", i)
		}
		got = append(got, b)
	}
	if p.get() != nil {
		t.Fatal("pool overcommitted")
	}
	for _, b := range got {
		p.put(b)
	}
	if p.get() == nil {
		t.Fatal("pool did not refill")
	}
}

func TestPoolPutResetsBlock(t *testing.T) {
	p := newTestPool(t, 1, 4096)
	b := p.get()
	b.setState(BlockLoading)
	b.session, b.seq, b.offset, b.payloadLen, b.last = 9, 9, 9, 9, true
	b.credit = wire.Credit{Addr: 1, RKey: 2, Len: 3}
	b.setState(BlockFree)
	p.put(b)
	b2 := p.get()
	if b2.session != 0 || b2.seq != 0 || b2.offset != 0 || b2.payloadLen != 0 || b2.last || b2.credit != (wire.Credit{}) {
		t.Fatalf("block not reset: %+v", b2)
	}
}

func TestPoolPutNonFreePanics(t *testing.T) {
	p := newTestPool(t, 1, 4096)
	b := p.get()
	b.setState(BlockLoading)
	defer func() {
		if recover() == nil {
			t.Fatal("putting loading block did not panic")
		}
	}()
	p.put(b)
}

func TestPoolLookups(t *testing.T) {
	p := newTestPool(t, 3, 4096)
	if p.byIdx(-1) != nil || p.byIdx(3) != nil {
		t.Fatal("out-of-range byIdx returned a block")
	}
	b := p.byIdx(1)
	if b == nil || b.idx != 1 {
		t.Fatal("byIdx(1) wrong")
	}
	if got := p.byRKey(b.mr.RKey); got != b {
		t.Fatal("byRKey mismatch")
	}
	if p.byRKey(0xFFFFFFFF) != nil {
		t.Fatal("byRKey invented a block")
	}
}

func TestFSMLegalCycle(t *testing.T) {
	b := &block{}
	// Source cycle.
	for _, s := range []BlockState{BlockLoading, BlockLoaded, BlockSending, BlockWaiting, BlockFree} {
		b.setState(s)
	}
	// Sink cycle.
	for _, s := range []BlockState{BlockWaiting, BlockDataReady, BlockStoring, BlockFree} {
		b.setState(s)
	}
	// Retry path: sending -> loaded (repost), waiting -> loaded (resend).
	b.setState(BlockLoading)
	b.setState(BlockLoaded)
	b.setState(BlockSending)
	b.setState(BlockLoaded)
	b.setState(BlockSending)
	b.setState(BlockWaiting)
	b.setState(BlockLoaded)
	// Abort shortcut: a queued (loaded-but-unsent) block recycled when
	// its session is torn down mid-transfer.
	b.setState(BlockFree)
}

func TestFSMIllegalTransitionsPanic(t *testing.T) {
	bad := []struct{ from, to BlockState }{
		{BlockFree, BlockLoaded},
		{BlockFree, BlockDataReady},
		{BlockLoaded, BlockWaiting},
		{BlockStoring, BlockDataReady},
		{BlockWaiting, BlockSending},
	}
	for _, c := range bad {
		b := &block{state: c.from} //lint:allow fsmtransition test must construct blocks at arbitrary FSM states
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("transition %v -> %v did not panic", c.from, c.to)
				}
			}()
			b.setState(c.to)
		}()
	}
}

// Property: any path through validNext keeps the FSM consistent and any
// step outside it panics.
func TestFSMTransitionTableProperty(t *testing.T) {
	f := func(steps []uint8) bool {
		b := &block{}
		for _, raw := range steps {
			to := BlockState(raw % 7)
			legal := false
			for _, n := range validNext[b.state] {
				if n == to {
					legal = true
					break
				}
			}
			panicked := func() (p bool) {
				defer func() { p = recover() != nil }()
				b.setState(to)
				return
			}()
			if legal == panicked {
				return false
			}
			if !legal {
				return true // state machine rejected; done with this case
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockStateStrings(t *testing.T) {
	names := map[BlockState]string{
		BlockFree: "free", BlockLoading: "loading", BlockLoaded: "loaded",
		BlockSending: "sending", BlockWaiting: "waiting",
		BlockDataReady: "data-ready", BlockStoring: "storing",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if BlockState(99).String() == "" {
		t.Error("unknown state has empty string")
	}
}

func TestConfigNormalizeDefaults(t *testing.T) {
	c, err := Config{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.BlockSize != 4<<20 || c.Channels != 1 || c.IODepth != 16 {
		t.Fatalf("defaults: %+v", c)
	}
	if c.SinkBlocks != 32 {
		t.Fatalf("SinkBlocks default = %d, want 2*IODepth", c.SinkBlocks)
	}
	if c.GrantPerConsume != 2 || c.InitialCredits != 2 {
		t.Fatalf("credit defaults: %+v", c)
	}
}

func TestConfigRejectsTinyBlocks(t *testing.T) {
	if _, err := (Config{BlockSize: wire.BlockHeaderSize}).Normalize(); err == nil {
		t.Fatal("header-only block size accepted")
	}
}

func TestConfigInitialCreditsCapped(t *testing.T) {
	c, _ := Config{IODepth: 4, SinkBlocks: 3, InitialCredits: 100}.Normalize()
	if c.InitialCredits != 3 {
		t.Fatalf("InitialCredits = %d, want capped to 3", c.InitialCredits)
	}
}

func TestPayloadCapacity(t *testing.T) {
	c := Config{BlockSize: 1024}
	if c.PayloadCapacity() != 1024-wire.BlockHeaderSize {
		t.Fatalf("capacity = %d", c.PayloadCapacity())
	}
}

func TestCreditPolicyStrings(t *testing.T) {
	if CreditProactive.String() != "proactive" || CreditOnDemand.String() != "on-demand" {
		t.Fatal("policy strings wrong")
	}
	if CreditPolicy(9).String() == "" {
		t.Fatal("unknown policy empty")
	}
}

func TestStatsBandwidth(t *testing.T) {
	s := Stats{Bytes: 1 << 30, Start: 0, End: 1e9} // 1 GiB in 1s
	want := float64(1<<30) * 8 / 1e9
	if got := s.BandwidthGbps(); got < want-0.01 || got > want+0.01 {
		t.Fatalf("bandwidth = %v, want %v", got, want)
	}
	if (Stats{}).BandwidthGbps() != 0 {
		t.Fatal("zero-elapsed bandwidth not 0")
	}
}
