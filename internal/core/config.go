// Package core implements the paper's data transfer protocol: the RDMA
// middleware's flow control, connection management, and task
// synchronization layer that RFTP is built on.
//
// Design (Section IV of the paper):
//
//   - One dedicated queue pair carries control messages via SEND/RECV;
//     one or more data channel queue pairs carry bulk payload via
//     one-sided RDMA WRITE.
//   - Buffer blocks move through finite state machines at both ends
//     (source: free → loading → loaded → sending → waiting → free;
//     sink: free → waiting → data-ready → free).
//   - The sink proactively pushes memory-region credits to the source
//     ("active feedback"), granting up to two per consumed block — an
//     exponential ramp that fills the pipe without the 1-RTT credit
//     fetch of request-based designs.
//   - Many blocks stay in flight (high I/O depth) and parallel channels
//     are reassembled at the sink by (session id, sequence number).
//
// The package is written purely against the verbs interface and a Loop
// executor, so the same protocol code runs over the simulated fabric
// (virtual time, modeled payload), the in-process channel fabric, and
// the TCP socket fabric (real bytes).
package core

import (
	"errors"
	"fmt"
	"time"

	"rftp/internal/wire"
)

// CreditPolicy selects how the sink hands out memory-region credits.
type CreditPolicy int

const (
	// CreditProactive is the paper's active-feedback design: the sink
	// pushes credits without being asked, up to GrantPerConsume per
	// consumed block (exponential ramp, like TCP slow start).
	CreditProactive CreditPolicy = iota
	// CreditOnDemand models the prior design the paper criticizes
	// (RXIO): the source must explicitly request credits and stalls a
	// full RTT waiting for each batch.
	CreditOnDemand
)

func (p CreditPolicy) String() string {
	switch p {
	case CreditProactive:
		return "proactive"
	case CreditOnDemand:
		return "on-demand"
	default:
		return fmt.Sprintf("CreditPolicy(%d)", int(p))
	}
}

// TransferMode selects the data path direction of a transfer.
type TransferMode int

const (
	// ModePush is the paper's design: the sink grants credits and the
	// source issues RDMA WRITEs into them.
	ModePush TransferMode = iota
	// ModePull inverts the data path (the RFP remote-fetching paradigm):
	// the source advertises loaded blocks and the sink fetches them with
	// one-sided RDMA READs, shifting the per-block data-path work to the
	// receiver.
	ModePull
	// ModeHybrid lets the source switch each session between push and
	// pull at run time, driven by its CPU-load probe and the per-mode
	// goodput estimators.
	ModeHybrid
)

func (m TransferMode) String() string {
	switch m {
	case ModePush:
		return "push"
	case ModePull:
		return "pull"
	case ModeHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("TransferMode(%d)", int(m))
	}
}

// ParseTransferMode parses the -mode flag values.
func ParseTransferMode(s string) (TransferMode, error) {
	switch s {
	case "push":
		return ModePush, nil
	case "pull":
		return ModePull, nil
	case "hybrid":
		return ModeHybrid, nil
	default:
		return ModePush, fmt.Errorf("core: unknown transfer mode %q (want push|pull|hybrid)", s)
	}
}

// Config parameterizes both ends of a transfer. The source's values are
// proposed during negotiation; the sink accepts or rejects them.
type Config struct {
	// BlockSize is the buffer block size in bytes, including the
	// wire.BlockHeaderSize header. The paper sweeps 4 KiB – 64 MiB.
	BlockSize int
	// Channels is the number of parallel data queue pairs.
	Channels int
	// IODepth is the source block pool size: the maximum number of
	// blocks in flight. High depth is the key to saturating the
	// asynchronous interface (Section III).
	IODepth int
	// SinkBlocks is the sink block pool size (the credit supply).
	// Defaults to 2*IODepth so reassembly holes never starve credits.
	SinkBlocks int
	// LoadDepth bounds in-flight Loads per session when the session's
	// BlockSource is offset-addressed (BlockSourceAt): seq and offset
	// are assigned at issue time, so loads overlap and may complete out
	// of order, keeping the storage stage as deep as the network stages.
	// Plain BlockSources always run one load at a time regardless.
	// Defaults to IODepth; values above IODepth are clamped to it (the
	// pool cannot hold more).
	LoadDepth int
	// StoreDepth bounds concurrent Stores per session at the sink, on
	// both the in-order delivery path and the OffsetSink fast path.
	// Defaults to SinkBlocks (effectively unbounded: every arrived block
	// may be storing at once).
	StoreDepth int
	// CreditPolicy selects proactive (paper) or on-demand (baseline)
	// credit flow.
	CreditPolicy CreditPolicy
	// GrantPerConsume caps credits granted back per consumed block under
	// the proactive policy (paper: 2 → exponential ramp; 1 → linear).
	GrantPerConsume int
	// InitialCredits is the number of credits pushed right after session
	// setup under the proactive policy.
	InitialCredits int
	// OnDemandBatch is the number of credits returned per explicit
	// request under the on-demand policy.
	OnDemandBatch int
	// NotifyViaImm replaces the paper's explicit block-transfer
	// completion notification (a SEND on the control QP) with RDMA
	// WRITE WITH IMMEDIATE on the data channels: the immediate value
	// names the consumed region and the sink learns of the block from
	// the data QP completion itself. One fewer message per block, at
	// the cost of consuming data-QP receives. Negotiated via
	// wire.FlagImmNotify; the sink adopts the source's choice.
	NotifyViaImm bool
	// NoGrantOnFree disables the re-advertise-on-free extension and
	// restricts the proactive policy to the paper's literal rule
	// (grants only at block-completion notifications and explicit
	// requests). Used by the credit-ramp ablation.
	NoGrantOnFree bool
	// CreditBatch is the coalescing flush threshold: proactive grants
	// (on-consume and on-free) accumulate in a pending batch that is
	// sent as one MR_INFO_RESPONSE once it reaches this many credits.
	// The batch also flushes early when the source's outstanding-credit
	// level falls below the low watermark or when the flush timer
	// fires, so the ramp and starvation behavior match the unbatched
	// protocol in aggregate. 1 disables coalescing (every grant event
	// sends immediately, the pre-coalescing behavior); 0 picks the
	// default (16); values above wire.MaxCreditsPerMsg are clamped.
	CreditBatch int
	// CreditFlushInterval bounds how long a non-empty grant batch may
	// wait before it is flushed. 0 picks an adaptive interval — the
	// time a full batch takes to form at the measured block-arrival
	// gap (batch size × gap), clamped to [200µs, 25ms] — so the timer
	// scales from LAN to WAN without tuning.
	CreditFlushInterval time.Duration
	// CreditWindow overrides the sink's target for credits outstanding
	// at the source. 0 sizes the window adaptively from measured
	// delivery rate × credit round-trip (a BDP estimate) clamped to
	// [max(4, SinkBlocks/8), SinkBlocks]; values above SinkBlocks are
	// clamped (the pool cannot back more credits).
	CreditWindow int
	// MaxSessions caps concurrently active sessions at the sink
	// (admission control). 0 = unlimited. A SESSION_REQ arriving at the
	// cap is queued (up to SessionQueue deep) or answered with a
	// SESSION_BUSY reply (MsgSessionResp carrying wire.FlagBusy).
	MaxSessions int
	// SessionQueue is how many SESSION_REQs may wait for a session slot
	// when MaxSessions is reached; requests beyond it are rejected busy.
	// 0 = reject immediately at the cap.
	SessionQueue int
	// TenantWeights assigns deficit-round-robin weights to the sink's
	// per-session credit scheduler. Session id i maps to
	// TenantWeights[(i-1) % len]; an empty slice means equal weight 1.
	// Non-positive entries are normalized to 1.
	TenantWeights []int
	// TransferMode selects push (paper), pull (RDMA-READ fetching), or
	// hybrid (adaptive per-session switching). On the sink it is the
	// policy boundary: a push-only sink refuses pull sessions and
	// mode-switch requests.
	TransferMode TransferMode
	// LoadProbe, on the source under ModeHybrid, reports the source
	// host's CPU load in [0, 1]. The hybrid controller switches sessions
	// to pull when the probe is high (the data-path work moves to the
	// sink) and back to push when it clears. nil leaves the controller
	// with only its per-mode goodput estimators.
	LoadProbe func() float64
	// ModelPayload marks simulation-scale transfers: payload is length
	// modeled, only headers travel as real bytes. Requires a fabric
	// supporting modeled memory regions.
	ModelPayload bool
	// MaxRetries bounds per-block resend attempts after a failed WRITE.
	MaxRetries int
	// NegotiateTimeout bounds each negotiation step (0 = no timeout).
	NegotiateTimeout time.Duration
}

// DefaultConfig returns the configuration used by the paper's headline
// runs: 4 MiB blocks, 1 channel, depth 16.
func DefaultConfig() Config {
	return Config{
		BlockSize:       4 << 20,
		Channels:        1,
		IODepth:         16,
		CreditPolicy:    CreditProactive,
		GrantPerConsume: 2,
		InitialCredits:  2,
		OnDemandBatch:   16,
		MaxRetries:      5,
	}
}

// Normalize fills defaults and validates.
func (c Config) Normalize() (Config, error) {
	if c.BlockSize == 0 {
		c.BlockSize = 4 << 20
	}
	if c.BlockSize < wire.BlockHeaderSize+1 {
		return c, fmt.Errorf("core: block size %d too small (min %d)", c.BlockSize, wire.BlockHeaderSize+1)
	}
	if c.Channels <= 0 {
		c.Channels = 1
	}
	if c.IODepth <= 0 {
		c.IODepth = 16
	}
	if c.SinkBlocks <= 0 {
		c.SinkBlocks = 2 * c.IODepth
	}
	if c.LoadDepth <= 0 || c.LoadDepth > c.IODepth {
		c.LoadDepth = c.IODepth
	}
	if c.StoreDepth <= 0 || c.StoreDepth > c.SinkBlocks {
		c.StoreDepth = c.SinkBlocks
	}
	if c.GrantPerConsume <= 0 {
		c.GrantPerConsume = 2
	}
	if c.InitialCredits <= 0 {
		c.InitialCredits = 2
	}
	if c.InitialCredits > c.SinkBlocks {
		c.InitialCredits = c.SinkBlocks
	}
	if c.OnDemandBatch <= 0 {
		c.OnDemandBatch = 16
	}
	if c.CreditBatch <= 0 {
		c.CreditBatch = 16
	}
	if c.CreditBatch > wire.MaxCreditsPerMsg {
		c.CreditBatch = wire.MaxCreditsPerMsg
	}
	if c.CreditFlushInterval < 0 {
		c.CreditFlushInterval = 0
	}
	if c.CreditWindow < 0 {
		c.CreditWindow = 0
	}
	if c.CreditWindow > c.SinkBlocks {
		c.CreditWindow = c.SinkBlocks
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 5
	}
	if c.MaxSessions < 0 {
		c.MaxSessions = 0
	}
	if c.SessionQueue < 0 {
		c.SessionQueue = 0
	}
	for i, w := range c.TenantWeights {
		if w <= 0 {
			c.TenantWeights[i] = 1
		}
	}
	return c, nil
}

// PayloadCapacity is the user bytes one block can carry.
func (c Config) PayloadCapacity() int { return c.BlockSize - wire.BlockHeaderSize }

// Errors surfaced by the protocol.
var (
	ErrNegotiationRejected = errors.New("core: peer rejected negotiation")
	ErrAborted             = errors.New("core: transfer aborted by peer")
	ErrClosed              = errors.New("core: endpoint closed")
	ErrTooManyRetries      = errors.New("core: block retry budget exhausted")
	ErrProtocol            = errors.New("core: protocol violation")
	ErrBusy                = errors.New("core: negotiation already in progress")
	ErrSessionBusy         = errors.New("core: sink at session capacity")
)

// Stats summarizes one side of a transfer.
type Stats struct {
	// Bytes is user payload bytes moved (headers excluded).
	Bytes int64
	// Blocks is the number of payload blocks moved.
	Blocks int64
	// CtrlMsgs counts control messages sent by this side.
	CtrlMsgs int64
	// CreditsGranted counts credits issued (sink) or received (source).
	CreditsGranted int64
	// GrantMsgs counts MR_INFO_RESPONSE messages sent (sink) or
	// received (source); CreditsGranted/GrantMsgs is the mean
	// grant-batch size the coalescer achieved.
	GrantMsgs int64
	// CreditStalls counts times the source ran dry and had to issue an
	// explicit MR_INFO_REQUEST.
	CreditStalls int64
	// CreditsReclaimed counts granted credits the sink took back without
	// a block landing in them (session teardown reclaim): every granted
	// credit is either consumed by an arrival or reclaimed, so
	// CreditsGranted = Blocks-arrived + CreditsReclaimed + outstanding.
	CreditsReclaimed int64
	// SessionsRejected counts SESSION_REQs turned away busy by admission
	// control (sink side).
	SessionsRejected int64
	// Retries counts block resends after failed WRITEs.
	Retries int64
	// Adverts counts pull-mode block advertisements sent (source) or
	// received (sink).
	Adverts int64
	// ReadsDone counts pull-mode READ completions: READ_DONE
	// notifications received (source) or RDMA READs completed (sink).
	// A settled ledger has Adverts == ReadsDone + reclaimed-on-abort.
	ReadsDone int64
	// ModeSwitches counts completed push<->pull mode-switch handshakes.
	ModeSwitches int64
	// Start and End are loop timestamps of first and last activity.
	Start, End time.Duration
}

// Elapsed is the active transfer duration.
func (s Stats) Elapsed() time.Duration { return s.End - s.Start }

// BandwidthGbps is user goodput in gigabits per second.
func (s Stats) BandwidthGbps() float64 {
	e := s.Elapsed().Seconds()
	if e <= 0 {
		return 0
	}
	return float64(s.Bytes) * 8 / e / 1e9
}
