package core

import (
	"fmt"
	"sync/atomic"

	"rftp/internal/verbs"
	"rftp/internal/wire"
)

// ctrlBufSize is the control receive buffer size: header plus a full
// credit batch.
const ctrlBufSize = wire.ControlHeaderSize + wire.MaxCreditsPerMsg*16

// dataQueueSlack is the send-queue headroom each data QP gets beyond
// the block pool's IODepth, absorbing retries and posting bursts so a
// momentarily full queue is exceptional rather than routine. The
// source's per-channel inflight bound uses the same value, so the QP
// queue and the protocol's own accounting agree.
const dataQueueSlack = 4

// Endpoint bundles the queue pairs one side of a connection uses: a
// dedicated control QP (SEND/RECV) and one or more data channel QPs
// (RDMA WRITE). The control QP always completes onto Loop; the data
// QPs are sharded across Shards, one completion queue per shard, so a
// multi-core host spreads per-block posting and completion work across
// reactors while the control plane (credits, sessions, ordering) stays
// single-threaded on shard 0.
type Endpoint struct {
	Dev  verbs.Device
	Loop verbs.Loop // control loop == Shards[0]
	PD   *verbs.PD

	// Shards are the reactor loops. Data channel i is owned by shard
	// i%len(Shards); Shards[0] is the control loop, so a one-shard
	// endpoint degenerates to the classic single-reactor layout.
	Shards []verbs.Loop

	Ctrl   verbs.QP
	Data   []verbs.QP
	CtrlCQ *verbs.UpcallCQ
	// DataCQs holds one completion queue per shard; data QP i completes
	// on DataCQs[i%len(Shards)]. DataCQ aliases DataCQs[0] for the
	// single-reactor case.
	DataCQs []*verbs.UpcallCQ
	DataCQ  *verbs.UpcallCQ

	// MRCache, when set before pools are created, supplies block
	// registrations from the pin-down cache instead of registering
	// fresh regions, and receives them back on teardown.
	MRCache *verbs.MRCache

	ctrlRecvMRs []*verbs.MR
	notifyMR    *verbs.MR
	notifyWRs   []verbs.RecvWR // one reusable repost WR per data QP
	ctrlDepth   int
	dataDepth   int
	// readDepth is the per-data-QP RDMA READ initiator depth
	// (QPConfig.MaxRDAtomic): the pull-mode fetcher's per-channel bound
	// on outstanding READs.
	readDepth int
	closed    atomic.Bool
}

// NewEndpoint creates a classic single-reactor endpoint: every QP
// completes onto loop.
func NewEndpoint(dev verbs.Device, loop verbs.Loop, channels, ioDepth int) (*Endpoint, error) {
	return NewShardedEndpoint(dev, []verbs.Loop{loop}, channels, ioDepth)
}

// ctrlMsgsPerSession is the control receive headroom reserved per
// additional tenant beyond the first: a session can land SESSION_REQ,
// MR_INFO_REQUEST, BLOCK_COMPLETE, and DATASET_COMPLETE in the window
// between a burst arriving and the control loop reposting receives, so
// an N-tenant connection admitting everyone at once needs the ring
// sized to the admission cap, not the block pool.
const ctrlMsgsPerSession = 4

// NewShardedEndpoint creates the QPs for one side: channels data QPs
// plus the control QP. loops[0] carries the control plane; the data
// channels are distributed round-robin over min(len(loops), channels)
// reactor shards, each with its own completion queue on its own loop.
// ioDepth sizes the queues: the control receive queue must absorb one
// message per in-flight block plus negotiation traffic. The control
// ring is sized for a single tenant; a multi-session service endpoint
// must use NewServiceEndpoint so the ring scales with the admission
// cap.
func NewShardedEndpoint(dev verbs.Device, loops []verbs.Loop, channels, ioDepth int) (*Endpoint, error) {
	return NewServiceEndpoint(dev, loops, channels, ioDepth, 1)
}

// NewServiceEndpoint creates a sharded endpoint whose control receive
// ring is additionally sized for sessions concurrent tenants (admitted
// plus queued). Below 256 tenants the single-session floor already
// covers the burst; above it an unsized ring takes receiver-not-ready
// retries on the admission storm (every tenant's SESSION_REQ, and later
// each one's MR_INFO_REQUEST / DATASET_COMPLETE, can arrive back to
// back before the loop reposts). sessions <= 1 is the classic layout.
func NewServiceEndpoint(dev verbs.Device, loops []verbs.Loop, channels, ioDepth, sessions int) (*Endpoint, error) {
	if channels < 1 {
		return nil, fmt.Errorf("core: need at least one data channel")
	}
	if len(loops) < 1 {
		return nil, fmt.Errorf("core: need at least one reactor loop")
	}
	nsh := len(loops)
	if nsh > channels {
		nsh = channels
	}
	ctrlDepth := 2*ioDepth + 16
	if sessions > 1 {
		ctrlDepth += ctrlMsgsPerSession * sessions
	}
	if ctrlDepth < 64 {
		ctrlDepth = 64
	}
	ep := &Endpoint{Dev: dev, Loop: loops[0], PD: dev.AllocPD(), ctrlDepth: ctrlDepth,
		dataDepth: ioDepth + dataQueueSlack, readDepth: ioDepth + dataQueueSlack}
	ep.Shards = append(ep.Shards, loops[:nsh]...)
	ep.CtrlCQ = verbs.NewUpcallCQ(ep.Loop)
	for i := 0; i < nsh; i++ {
		ep.DataCQs = append(ep.DataCQs, verbs.NewUpcallCQ(loops[i]))
	}
	ep.DataCQ = ep.DataCQs[0]

	var err error
	ep.Ctrl, err = dev.CreateQP(verbs.QPConfig{
		PD: ep.PD, SendCQ: ep.CtrlCQ, RecvCQ: ep.CtrlCQ,
		MaxSend: ctrlDepth, MaxRecv: ctrlDepth,
	})
	if err != nil {
		return nil, fmt.Errorf("core: control QP: %w", err)
	}
	dataDepth := ep.dataDepth
	for i := 0; i < channels; i++ {
		cq := ep.DataCQs[i%nsh]
		// MaxRDAtomic is set explicitly to the full send depth: the
		// pull-mode fetcher bounds its own outstanding READs per channel
		// (ep.readDepth), so the QP-level initiator cap must not park
		// READs below what the protocol already accounts for.
		qp, err := dev.CreateQP(verbs.QPConfig{
			PD: ep.PD, SendCQ: cq, RecvCQ: cq,
			MaxSend: dataDepth, MaxRecv: dataDepth + 4,
			MaxRDAtomic: ep.readDepth,
		})
		if err != nil {
			return nil, fmt.Errorf("core: data QP %d: %w", i, err)
		}
		ep.Data = append(ep.Data, qp)
	}

	// Pre-post the full control receive ring so control SENDs never hit
	// receiver-not-ready (Section III: "the data sink must pre-post
	// sufficient registered buffers in the receive queue").
	for i := 0; i < ctrlDepth; i++ {
		mr, err := dev.RegisterMR(ep.PD, make([]byte, ctrlBufSize), verbs.AccessLocalWrite)
		if err != nil {
			return nil, fmt.Errorf("core: control recv buffer: %w", err)
		}
		ep.ctrlRecvMRs = append(ep.ctrlRecvMRs, mr)
		if err := ep.Ctrl.PostRecv(&verbs.RecvWR{WRID: uint64(i), MR: mr, Len: ctrlBufSize}); err != nil {
			return nil, fmt.Errorf("core: pre-posting control recv: %w", err)
		}
	}
	return ep, nil
}

// shardIndex maps a data channel to the reactor shard that owns it.
func (ep *Endpoint) shardIndex(ch int) int { return ch % len(ep.Shards) }

// postDataNotifyRecvs pre-posts notification receives on every data QP
// (immediate-notification mode: WRITE WITH IMMEDIATE consumes one
// receive per block). The buffers are minimal: the immediate value and
// completion metadata carry everything.
func (ep *Endpoint) postDataNotifyRecvs(perQP int) error {
	mr, err := ep.Dev.RegisterMR(ep.PD, make([]byte, 64), verbs.AccessLocalWrite)
	if err != nil {
		return fmt.Errorf("core: notify recv buffer: %w", err)
	}
	ep.notifyMR = mr
	ep.notifyWRs = make([]verbs.RecvWR, len(ep.Data))
	for _, qp := range ep.Data {
		for i := 0; i < perQP; i++ {
			if err := qp.PostRecv(&verbs.RecvWR{WRID: uint64(i), MR: mr, Len: 64}); err != nil {
				return fmt.Errorf("core: pre-posting notify recv: %w", err)
			}
		}
	}
	return nil
}

// repostDataNotifyRecv replenishes one notification receive on data QP
// ch. Each data QP is reposted only from its owning shard's loop, so
// the per-QP reusable WR has a single writer.
func (ep *Endpoint) repostDataNotifyRecv(ch int, wrid uint64) error {
	if ep.closed.Load() {
		return ErrClosed
	}
	wr := &ep.notifyWRs[ch]
	wr.WRID, wr.MR, wr.Len = wrid, ep.notifyMR, 64
	return ep.Data[ch].PostRecv(wr)
}

// repostCtrlRecv returns a consumed control receive buffer to the ring.
func (ep *Endpoint) repostCtrlRecv(wrid uint64) error {
	if ep.closed.Load() {
		return ErrClosed
	}
	mr := ep.ctrlRecvMRs[int(wrid)]
	return ep.Ctrl.PostRecv(&verbs.RecvWR{WRID: wrid, MR: mr, Len: ctrlBufSize})
}

// Close tears down all queue pairs.
func (ep *Endpoint) Close() {
	if !ep.closed.CompareAndSwap(false, true) {
		return
	}
	ep.Ctrl.Close()
	for _, qp := range ep.Data {
		qp.Close()
	}
}
