package core

import (
	"fmt"

	"rftp/internal/verbs"
	"rftp/internal/wire"
)

// ctrlBufSize is the control receive buffer size: header plus a full
// credit batch.
const ctrlBufSize = wire.ControlHeaderSize + wire.MaxCreditsPerMsg*16

// dataQueueSlack is the send-queue headroom each data QP gets beyond
// the block pool's IODepth, absorbing retries and posting bursts so a
// momentarily full queue is exceptional rather than routine. The
// source's per-channel inflight bound uses the same value, so the QP
// queue and the protocol's own accounting agree.
const dataQueueSlack = 4

// Endpoint bundles the queue pairs one side of a connection uses: a
// dedicated control QP (SEND/RECV) and one or more data channel QPs
// (RDMA WRITE), all completing onto one event loop.
type Endpoint struct {
	Dev  verbs.Device
	Loop verbs.Loop
	PD   *verbs.PD

	Ctrl   verbs.QP
	Data   []verbs.QP
	CtrlCQ *verbs.UpcallCQ
	DataCQ *verbs.UpcallCQ

	ctrlRecvMRs []*verbs.MR
	notifyMR    *verbs.MR
	ctrlDepth   int
	dataDepth   int
	closed      bool
}

// NewEndpoint creates the QPs for one side: channels data QPs plus the
// control QP. ioDepth sizes the queues: the control receive queue must
// absorb one message per in-flight block plus negotiation traffic.
func NewEndpoint(dev verbs.Device, loop verbs.Loop, channels, ioDepth int) (*Endpoint, error) {
	if channels < 1 {
		return nil, fmt.Errorf("core: need at least one data channel")
	}
	ctrlDepth := 2*ioDepth + 16
	if ctrlDepth < 64 {
		ctrlDepth = 64
	}
	ep := &Endpoint{Dev: dev, Loop: loop, PD: dev.AllocPD(), ctrlDepth: ctrlDepth, dataDepth: ioDepth + dataQueueSlack}
	ep.CtrlCQ = verbs.NewUpcallCQ(loop)
	ep.DataCQ = verbs.NewUpcallCQ(loop)

	var err error
	ep.Ctrl, err = dev.CreateQP(verbs.QPConfig{
		PD: ep.PD, SendCQ: ep.CtrlCQ, RecvCQ: ep.CtrlCQ,
		MaxSend: ctrlDepth, MaxRecv: ctrlDepth,
	})
	if err != nil {
		return nil, fmt.Errorf("core: control QP: %w", err)
	}
	dataDepth := ep.dataDepth
	for i := 0; i < channels; i++ {
		qp, err := dev.CreateQP(verbs.QPConfig{
			PD: ep.PD, SendCQ: ep.DataCQ, RecvCQ: ep.DataCQ,
			MaxSend: dataDepth, MaxRecv: dataDepth + 4,
		})
		if err != nil {
			return nil, fmt.Errorf("core: data QP %d: %w", i, err)
		}
		ep.Data = append(ep.Data, qp)
	}

	// Pre-post the full control receive ring so control SENDs never hit
	// receiver-not-ready (Section III: "the data sink must pre-post
	// sufficient registered buffers in the receive queue").
	for i := 0; i < ctrlDepth; i++ {
		mr, err := dev.RegisterMR(ep.PD, make([]byte, ctrlBufSize), verbs.AccessLocalWrite)
		if err != nil {
			return nil, fmt.Errorf("core: control recv buffer: %w", err)
		}
		ep.ctrlRecvMRs = append(ep.ctrlRecvMRs, mr)
		if err := ep.Ctrl.PostRecv(&verbs.RecvWR{WRID: uint64(i), MR: mr, Len: ctrlBufSize}); err != nil {
			return nil, fmt.Errorf("core: pre-posting control recv: %w", err)
		}
	}
	return ep, nil
}

// postDataNotifyRecvs pre-posts notification receives on every data QP
// (immediate-notification mode: WRITE WITH IMMEDIATE consumes one
// receive per block). The buffers are minimal: the immediate value and
// completion metadata carry everything.
func (ep *Endpoint) postDataNotifyRecvs(perQP int) error {
	mr, err := ep.Dev.RegisterMR(ep.PD, make([]byte, 64), verbs.AccessLocalWrite)
	if err != nil {
		return fmt.Errorf("core: notify recv buffer: %w", err)
	}
	ep.notifyMR = mr
	for _, qp := range ep.Data {
		for i := 0; i < perQP; i++ {
			if err := qp.PostRecv(&verbs.RecvWR{WRID: uint64(i), MR: mr, Len: 64}); err != nil {
				return fmt.Errorf("core: pre-posting notify recv: %w", err)
			}
		}
	}
	return nil
}

// repostDataNotifyRecv replenishes one notification receive on qp.
func (ep *Endpoint) repostDataNotifyRecv(qp verbs.QP, wrid uint64) error {
	if ep.closed {
		return ErrClosed
	}
	return qp.PostRecv(&verbs.RecvWR{WRID: wrid, MR: ep.notifyMR, Len: 64})
}

// repostCtrlRecv returns a consumed control receive buffer to the ring.
func (ep *Endpoint) repostCtrlRecv(wrid uint64) error {
	if ep.closed {
		return ErrClosed
	}
	mr := ep.ctrlRecvMRs[int(wrid)]
	return ep.Ctrl.PostRecv(&verbs.RecvWR{WRID: wrid, MR: mr, Len: ctrlBufSize})
}

// Close tears down all queue pairs.
func (ep *Endpoint) Close() {
	if ep.closed {
		return
	}
	ep.closed = true
	ep.Ctrl.Close()
	for _, qp := range ep.Data {
		qp.Close()
	}
}
