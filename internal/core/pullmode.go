package core

// Pull-mode data path (DESIGN.md §5.3.6): the mirror image of the
// paper's push protocol. Instead of the sink granting credits and the
// source issuing RDMA WRITEs, the source advertises loaded blocks
// (MsgBlockAdvert names the region, sequence, offset and length) and
// the sink fetches them with one-sided RDMA READs issued from its
// reactor shards, bounded by MaxRDAtomic per data QP. A READ_DONE
// notification recycles the advertised block at the source.
//
// The advertise pipeline is bounded by the sink's adaptive credit
// window machinery run in reverse: the advert→READ_DONE round trip is
// the credit round trip, READ_DONE arrivals are the delivery-rate
// signal, and the window is headroom × BDP plus the load pipeline
// depth.
//
// The hybrid controller switches each session between the two paths at
// run time — pull when the source host is busy (the per-block
// data-path work moves to the receiver, which is the RFP argument),
// push otherwise — via a mode-change handshake that drains in-flight
// blocks on both sides so no block is lost or duplicated.

import (
	"errors"
	"fmt"
	"time"

	"rftp/internal/trace"
	"rftp/internal/verbs"
	"rftp/internal/wire"
)

// Hybrid-controller constants: the load-probe hysteresis band, the
// minimum blocks between switches (handshakes cost a round trip and a
// pipeline drain), the goodput-estimator epoch, and the rate margin at
// which measured throughput overrides the load heuristic.
const (
	pullLoadHi          = 0.75
	pullLoadLo          = 0.5
	modeSwitchMinBlocks = 32
	modeRateEpoch       = 16
	modeRateMargin      = 1.25
)

// probeLoad samples the configured CPU-load probe, clamped to [0, 1].
func (s *Source) probeLoad() float64 {
	if s.cfg.LoadProbe == nil {
		return 0
	}
	l := s.cfg.LoadProbe()
	if l < 0 {
		return 0
	}
	if l > 1 {
		return 1
	}
	return l
}

// initialMode picks a new session's starting data path. Hybrid
// sessions consult the load probe once at open so a session born under
// load starts in pull instead of paying for a switch immediately.
func (s *Source) initialMode() TransferMode {
	switch s.cfg.TransferMode {
	case ModePull:
		return ModePull
	case ModeHybrid:
		if s.probeLoad() >= pullLoadHi {
			return ModePull
		}
	}
	return ModePush
}

// advertWindow bounds outstanding advertisements across all sessions:
// the sink-side adaptive credit window reused in reverse. Before
// warmup the window is the whole pool (pre-adaptive behavior).
func (s *Source) advertWindow() int {
	win := s.cfg.IODepth
	if s.advSamples < winWarmup || s.advGap <= 0 || s.advRTT <= 0 {
		return win
	}
	bdp := int(float64(s.advRTT) / float64(s.advGap))
	w := winHeadroom*bdp + s.cfg.LoadDepth
	floor := s.cfg.IODepth / 8
	if floor < 4 {
		floor = 4
	}
	if w < floor {
		w = floor
	}
	if w > win {
		w = win
	}
	return w
}

// noteAdvertSample feeds one READ_DONE into the advertise-window
// estimator: rtt is the advert→READ_DONE latency, now the arrival
// timestamp. Mirrors Sink.noteWindowSample (min-filtered RTT, epoch
// mean gap folded into an EWMA).
func (s *Source) noteAdvertSample(now, rtt time.Duration) {
	s.advSamples++
	if rtt > 0 && (s.advRTT == 0 || rtt < s.advRTT || s.advRTTAge >= winRTTWindow) {
		s.advRTT, s.advRTTAge = rtt, 0
	} else {
		s.advRTTAge++
	}
	if s.advEpochBlocks == 0 {
		s.advEpochStart, s.advEpochBlocks = now, 1
		return
	}
	s.advEpochBlocks++
	if s.advEpochBlocks <= winGapEpoch {
		return
	}
	if elapsed := now - s.advEpochStart; elapsed > 0 {
		mean := elapsed / time.Duration(s.advEpochBlocks-1)
		if s.advGap == 0 {
			s.advGap = mean
		} else {
			s.advGap += (mean - s.advGap) / 2
		}
	}
	s.advEpochStart, s.advEpochBlocks = now, 1
}

// postAdverts drains pull-mode sessions' loaded queues into block
// advertisements, round-robin one block per turn (mirroring
// postWrites' interleaving), bounded by the adaptive advertise window.
func (s *Source) postAdverts() {
	for progress := true; progress && s.failed == nil; {
		progress = false
		n := len(s.rrSessions)
		for i := 0; i < n && s.failed == nil; i++ {
			m := len(s.rrSessions)
			if m == 0 {
				return
			}
			sess := s.rrSessions[(s.nextAdvSess+i)%m]
			if sess.mode != ModePull || sess.switching || sess.aborting || len(sess.loadedQ) == 0 {
				continue
			}
			if s.advertCount >= s.advertWindow() {
				s.nextAdvSess = (s.nextAdvSess + i) % m
				return // window full; READ_DONEs will re-pump
			}
			b := sess.loadedQ[0]
			sess.loadedQ = sess.loadedQ[1:]
			sess.queued--
			s.advertise(sess, b)
			progress = true
		}
		if n > 0 {
			s.nextAdvSess = (s.nextAdvSess + 1) % n
		}
	}
}

// advertise exposes one loaded block to remote READs: the header is
// encoded into the region (READs fetch header and payload in one
// operation, exactly like a WRITE carries them) and the advertisement
// names the region on the control QP.
func (s *Source) advertise(sess *srcSession, b *block) {
	hdr := wire.BlockHeader{
		Session: b.session, Seq: b.seq, Offset: b.offset,
		PayloadLen: uint32(b.payloadLen), Last: b.last,
	}
	wire.EncodeBlockHeader(b.mr.Buf, hdr)
	b.setState(BlockAdvertised)
	b.tPost = s.ep.Loop.Now()
	sess.advertised[b.seq] = b
	s.advertCount++
	s.stats.Adverts++
	if t := s.tel; t != nil {
		t.advertsPosted.Inc()
		t.advertsOutstanding.Set(int64(s.advertCount))
	}
	var flags uint8
	if b.last {
		flags |= wire.FlagLastBlock
	}
	s.Trace.Emit(trace.Event{Cat: trace.CatBlock, Name: "advertised",
		Session: b.session, Block: b.seq, V1: int64(b.payloadLen)})
	s.sendCtrl(&wire.Control{
		Type: wire.MsgBlockAdvert, Flags: flags,
		Session: b.session, Seq: b.seq,
		Addr: b.mr.Addr, RKey: b.mr.RKey,
		Length: uint32(b.payloadLen), AssocData: b.offset,
	})
}

// handleReadDone recycles an advertised block the sink finished
// READing. FlagAccept distinguishes a delivered block from one the
// sink discarded against a dead session (recycled without counting).
func (s *Source) handleReadDone(c *wire.Control) {
	sess := s.sessions[c.Session]
	if sess == nil {
		return // teardown crossed the notification on the wire
	}
	b := sess.advertised[c.Seq]
	if b == nil {
		return
	}
	if b.mr.RKey != c.RKey {
		s.fail(fmt.Errorf("%w: READ_DONE rkey %d does not match advertised block %d/%d (rkey %d)",
			ErrProtocol, c.RKey, c.Session, c.Seq, b.mr.RKey))
		return
	}
	delete(sess.advertised, c.Seq)
	s.advertCount--
	s.stats.ReadsDone++
	now := s.ep.Loop.Now()
	if c.Flags&wire.FlagAccept != 0 {
		s.stats.Bytes += int64(b.payloadLen)
		s.stats.Blocks++
		s.stats.End = now
		sess.sent += int64(b.payloadLen)
		sess.blocks++
		s.noteAdvertSample(now, now-b.tPost)
		if s.OnProgress != nil {
			s.OnProgress(sess.id, sess.sent)
		}
	}
	if t := s.tel; t != nil {
		t.advertsOutstanding.Set(int64(s.advertCount))
		t.postLatency.Observe(int64(now - b.tPost))
	}
	b.setState(BlockFree)
	s.pool.put(b)
	if sess.aborting {
		s.maybeFinishAbort(sess)
	} else {
		s.noteModeProgress(sess)
		if sess.switching {
			s.maybeSendSwitchReq(sess)
		}
	}
	s.pump()
}

// noteModeProgress feeds one completed block into the per-mode goodput
// estimator (epoch mean folded into an EWMA, the same shape as the
// window estimators) and lets the hybrid controller reconsider the
// session's mode at each epoch boundary.
func (s *Source) noteModeProgress(sess *srcSession) {
	if s.cfg.TransferMode != ModeHybrid || sess.aborting || sess.completeTx {
		return
	}
	now := s.ep.Loop.Now()
	if sess.rateEpochBlocks == 0 {
		sess.rateEpochStart, sess.rateEpochBlocks = now, 1
		return
	}
	sess.rateEpochBlocks++
	if sess.rateEpochBlocks <= modeRateEpoch {
		return
	}
	if elapsed := now - sess.rateEpochStart; elapsed > 0 {
		rate := float64(sess.rateEpochBlocks-1) / elapsed.Seconds()
		i := 0
		if sess.mode == ModePull {
			i = 1
		}
		if sess.modeRate[i] == 0 {
			sess.modeRate[i] = rate
		} else {
			sess.modeRate[i] += (rate - sess.modeRate[i]) / 2
		}
	}
	sess.rateEpochStart, sess.rateEpochBlocks = now, 1
	s.maybeSwitchMode(sess)
}

// maybeSwitchMode is the hybrid controller's decision point: the load
// probe picks the mode with hysteresis (≥ pullLoadHi → pull,
// ≤ pullLoadLo → push), and the per-mode goodput estimators override
// it when the other mode's measured rate is decisively better.
func (s *Source) maybeSwitchMode(sess *srcSession) {
	if sess.switching || sess.aborting || sess.completeTx {
		return
	}
	if sess.blocks-sess.lastSwitchBlocks < modeSwitchMinBlocks {
		return
	}
	want := sess.mode
	load := s.probeLoad()
	if load >= pullLoadHi {
		want = ModePull
	} else if load <= pullLoadLo {
		want = ModePush
	}
	cur, other := 0, 1
	if sess.mode == ModePull {
		cur, other = 1, 0
	}
	if sess.modeRate[cur] > 0 && sess.modeRate[other] > modeRateMargin*sess.modeRate[cur] {
		if sess.mode == ModePull {
			want = ModePush
		} else {
			want = ModePull
		}
	}
	if want != sess.mode {
		s.initiateModeSwitch(sess, want)
	}
}

// initiateModeSwitch starts the mode-change handshake: stop feeding
// the old path, drain its in-flight blocks, then tell the sink the
// cumulative block count so it can reconcile before flipping.
func (s *Source) initiateModeSwitch(sess *srcSession, want TransferMode) {
	sess.switching = true
	sess.pendingMode = want
	sess.stalled = false
	s.Trace.Emit(trace.Event{Cat: trace.CatSession, Name: "mode_switch_start",
		Session: sess.id, V1: int64(want), V2: sess.blocks})
	s.maybeSendSwitchReq(sess)
}

// maybeSendSwitchReq sends the switch request once the outgoing path
// is drained: no WRITE in flight (→ pull) or no advertisement
// outstanding (→ push). postWrites/postAdverts both skip switching
// sessions, so the drain is monotone.
func (s *Source) maybeSendSwitchReq(sess *srcSession) {
	if !sess.switching || sess.switchReqSent {
		return
	}
	if sess.pendingMode == ModePull && sess.inflight > 0 {
		return
	}
	if sess.pendingMode == ModePush && len(sess.advertised) > 0 {
		return
	}
	sess.switchReqSent = true
	var flags uint8
	if sess.pendingMode == ModePull {
		flags |= wire.FlagModePull
	}
	// AssocData is the cumulative completed-block count: the sink holds
	// the flip until its arrivals match, so a straggling completion can
	// never land after its region was reclaimed.
	s.sendCtrl(&wire.Control{Type: wire.MsgModeSwitchReq, Flags: flags,
		Session: sess.id, AssocData: uint64(sess.blocks)})
}

// handleModeSwitchAck completes (or abandons, if the sink refused) the
// mode-change handshake.
func (s *Source) handleModeSwitchAck(c *wire.Control) {
	sess := s.sessions[c.Session]
	if sess == nil || !sess.switching {
		return
	}
	sess.switching = false
	sess.switchReqSent = false
	sess.lastSwitchBlocks = sess.blocks
	if c.Flags&wire.FlagAccept == 0 {
		// Refused (push-only sink policy): stay in the current mode.
		s.Trace.Emit(trace.Event{Cat: trace.CatSession, Name: "mode_switch_refused",
			Session: sess.id})
		s.pump()
		return
	}
	if sess.pendingMode == ModePull {
		// The sink reclaimed the session's granted blocks when it
		// processed the request; our stash copies are dead.
		s.dropCredits(sess)
	}
	sess.mode = sess.pendingMode
	s.stats.ModeSwitches++
	if t := s.tel; t != nil {
		t.modeSwitches.Inc()
	}
	s.Trace.Emit(trace.Event{Cat: trace.CatSession, Name: "mode_switch_done",
		Session: sess.id, V1: int64(sess.mode), V2: sess.blocks})
	s.pump()
}

// fetchAdvert is one advertisement queued at the sink awaiting a free
// block and a READ slot.
type fetchAdvert struct {
	seq        uint32
	addr       uint64
	rkey       uint32
	payloadLen uint32
	offset     uint64
	last       bool
}

// handleAdvert queues a block advertisement for fetching.
func (k *Sink) handleAdvert(c *wire.Control) {
	if k.pool == nil {
		k.fail(fmt.Errorf("%w: block advert before negotiation", ErrProtocol))
		return
	}
	sess := k.sessions[c.Session]
	if sess == nil || sess.finished {
		// Advert racing a teardown: nothing to fetch into, but the
		// source's drain must not wedge — answer unaccepted so it
		// recycles the block.
		k.sendCtrl(&wire.Control{Type: wire.MsgReadDone, Session: c.Session, Seq: c.Seq, RKey: c.RKey})
		return
	}
	k.stats.Adverts++
	sess.fetchQ = append(sess.fetchQ, fetchAdvert{
		seq: c.Seq, addr: c.Addr, rkey: c.RKey,
		payloadLen: c.Length, offset: c.AssocData,
		last: c.Flags&wire.FlagLastBlock != 0,
	})
	k.Trace.Emit(trace.Event{Cat: trace.CatBlock, Name: "advert_recv",
		Session: c.Session, Block: c.Seq, V1: int64(c.Length)})
	k.pumpFetches()
}

// pumpFetches pairs queued advertisements with free blocks and READ
// slots, round-robin over sessions, and hands each fetch to the
// owning reactor shard. The per-channel bound is the QP's initiator
// depth (MaxRDAtomic), striping READs across channels and shards the
// way postWrites stripes WRITEs.
func (k *Sink) pumpFetches() {
	if k.pool == nil || k.failed != nil || k.closed {
		return
	}
	for progress := true; progress; {
		progress = false
		n := len(k.schedOrder)
		for i := 0; i < n; i++ {
			m := len(k.schedOrder)
			if m == 0 {
				return
			}
			sess := k.schedOrder[(k.fetchRR+i)%m]
			if sess.finished || len(sess.fetchQ) == 0 {
				continue
			}
			ch := k.pickReadChannel()
			if ch < 0 {
				k.fetchRR = (k.fetchRR + i) % m
				return // every channel at initiator depth
			}
			b := k.pool.get()
			if b == nil {
				k.fetchRR = (k.fetchRR + i) % m
				return // pool dry; a store completion will re-pump
			}
			adv := sess.fetchQ[0]
			sess.fetchQ = sess.fetchQ[1:]
			k.issueFetch(sess, b, adv, ch)
			progress = true
		}
		if n > 0 {
			k.fetchRR = (k.fetchRR + 1) % n
		}
	}
}

// pickReadChannel returns the next data channel with READ headroom
// (round-robin), or -1 when every channel is at initiator depth.
func (k *Sink) pickReadChannel() int {
	for i := 0; i < len(k.ep.Data); i++ {
		ch := (k.nextReadCh + i) % len(k.ep.Data)
		if k.chReads[ch] >= k.ep.readDepth {
			continue
		}
		k.nextReadCh = (ch + 1) % len(k.ep.Data)
		return ch
	}
	return -1
}

// issueFetch commits one advertisement to a block and channel (free →
// fetching) and hands it to the channel's shard, which posts the READ.
func (k *Sink) issueFetch(sess *sinkSession, b *block, adv fetchAdvert, ch int) {
	b.setState(BlockFetching)
	b.session = sess.info.ID
	b.seq = adv.seq
	b.offset = adv.offset
	b.payloadLen = int(adv.payloadLen)
	b.last = adv.last
	// The advertised remote region rides in the credit field: the pull
	// path's mirror use of "the remote memory this block pairs with".
	b.credit = wire.Credit{Addr: adv.addr, RKey: adv.rkey, Len: adv.payloadLen}
	b.chIdx = ch
	b.tAcq = k.ep.Loop.Now()
	b.spans.SetKey(b.spanRef, b.session, b.seq)
	k.chReads[ch]++
	k.readsInflight++
	if t := k.tel; t != nil {
		t.readsPosted.Inc()
		t.readsInflight.Set(int64(k.readsInflight))
	}
	k.shards[k.ep.shardIndex(ch)].fetchIn.send(b)
}

// readReverted undoes issueFetch's accounting for a READ the shard
// could not post. A momentarily full send queue requeues the
// advertisement; anything else is fatal for the connection.
func (k *Sink) readReverted(b *block, err error) {
	k.chReads[b.chIdx]--
	k.readsInflight--
	if t := k.tel; t != nil {
		t.readsInflight.Set(int64(k.readsInflight))
	}
	adv := fetchAdvert{seq: b.seq, addr: b.credit.Addr, rkey: b.credit.RKey,
		payloadLen: uint32(b.payloadLen), offset: b.offset, last: b.last}
	sessID := b.session
	k.pool.put(b)
	if !errors.Is(err, verbs.ErrSendQueueFull) {
		k.fail(fmt.Errorf("core: posting READ: %w", err))
		return
	}
	if sess := k.sessions[sessID]; sess != nil && !sess.finished {
		sess.fetchQ = append([]fetchAdvert{adv}, sess.fetchQ...)
	}
}

// readArrived is the control-plane half of a READ completion: notify
// the source, account the arrival, and feed the reassembly/delivery
// machinery exactly as a pushed block would.
func (k *Sink) readArrived(b *block) {
	k.chReads[b.chIdx]--
	k.readsInflight--
	k.stats.ReadsDone++
	if t := k.tel; t != nil {
		t.readsInflight.Set(int64(k.readsInflight))
	}
	sess := k.sessions[b.session]
	if sess == nil || sess.finished {
		// The session died while the READ was in flight: recycle the
		// block and answer unaccepted so the source's drain completes.
		k.sendCtrl(&wire.Control{Type: wire.MsgReadDone, Session: b.session, Seq: b.seq, RKey: b.credit.RKey})
		b.setState(BlockFree)
		k.pool.put(b)
		k.pumpFetches()
		return
	}
	k.sendCtrl(&wire.Control{Type: wire.MsgReadDone, Flags: wire.FlagAccept,
		Session: b.session, Seq: b.seq, RKey: b.credit.RKey})
	sess.arrived++
	if dup := k.noteArrival(sess, b.seq); dup {
		k.fail(fmt.Errorf("%w: duplicate block %d/%d", ErrProtocol, b.session, b.seq))
		return
	}
	if sess.offsetSink != nil {
		sess.storeQ = append(sess.storeQ, b)
	} else {
		sess.ready[b.seq] = b
	}
	now := k.ep.Loop.Now()
	k.noteWindowSample(now, now-b.tAcq)
	if t := k.tel; t != nil {
		t.creditLatency.Observe(int64(now - b.tAcq))
		t.reassembly.Observe(int64(len(sess.ready) + len(sess.storeQ)))
		t.blocksArrived.Inc()
		t.bytesArrived.Add(int64(b.payloadLen))
	}
	if b.last {
		sess.haveLast = true
		sess.lastSeq = b.seq
	}
	if sess.offsetSink != nil {
		k.pumpStores(sess)
	} else {
		k.deliver(sess)
	}
	k.pumpFetches()
	k.noteStall()
}

// handleModeSwitch processes the source's push<->pull switch request.
// To pull: once arrivals match the source's cumulative count, reclaim
// the session's granted-but-unlanded blocks (the source stopped
// consuming credits before asking) and flip. To push: the source
// drained its advertisements first — every READ_DONE is ahead of the
// request on the control QP — so the fetch pipeline is already empty;
// flip and restart the credit feed.
func (k *Sink) handleModeSwitch(c *wire.Control) {
	sess := k.sessions[c.Session]
	if sess == nil || sess.finished {
		return // teardown crossed the request; the abort reconciles
	}
	toPull := c.Flags&wire.FlagModePull != 0
	if toPull && k.cfg.TransferMode == ModePush {
		// Push-only policy: never expose the pull path; the source
		// stays in push.
		k.sendCtrl(&wire.Control{Type: wire.MsgModeSwitchAck,
			Session: sess.info.ID, AssocData: uint64(sess.arrived)})
		return
	}
	if toPull {
		if sess.arrived < int64(c.AssocData) {
			// Straggling WRITE completions are still queued in the data
			// CQs; finish the switch when arrivals catch up.
			sess.pendingSwitchToPull = true
			sess.pendingSwitchCount = int64(c.AssocData)
			return
		}
		k.completeSwitchToPull(sess)
		return
	}
	if sess.mode == ModePull {
		sess.mode = ModePush
		k.pushSessions++
	}
	k.stats.ModeSwitches++
	k.Trace.Emit(trace.Event{Cat: trace.CatSession, Name: "mode_switch_push",
		Session: sess.info.ID, V1: sess.arrived})
	k.sendCtrl(&wire.Control{Type: wire.MsgModeSwitchAck, Flags: wire.FlagAccept,
		Session: sess.info.ID, AssocData: uint64(sess.arrived)})
	if k.cfg.CreditPolicy == CreditProactive {
		want := k.cfg.InitialCredits
		if c := k.sessionCap(sess); want > c {
			want = c
		}
		k.grantCredits(sess, want, grantInitial)
	}
}

// completeSwitchToPull reclaims the session's granted blocks and flips
// it to the pull path. Safe only once the source's reported write
// count has been matched by arrivals (see handleModeSwitch).
func (k *Sink) completeSwitchToPull(sess *sinkSession) {
	sess.pendingSwitchToPull = false
	n := k.reclaimOwned(sess.info.ID, sess.owned)
	sess.owned = make(map[*block]struct{})
	sess.granted = 0
	if sess.mode == ModePush {
		sess.mode = ModePull
		k.pushSessions--
	}
	k.stats.ModeSwitches++
	if n > 0 && k.pushSessions > 0 && k.failed == nil && !k.closed &&
		k.cfg.CreditPolicy == CreditProactive && !k.cfg.NoGrantOnFree {
		// The reclaimed blocks re-enter circulation for the remaining
		// push tenants.
		k.queueGrants(n, grantOnFree)
	}
	k.Trace.Emit(trace.Event{Cat: trace.CatSession, Name: "mode_switch_pull",
		Session: sess.info.ID, V1: sess.arrived, V2: int64(n)})
	k.sendCtrl(&wire.Control{Type: wire.MsgModeSwitchAck, Flags: wire.FlagAccept | wire.FlagModePull,
		Session: sess.info.ID, AssocData: uint64(sess.arrived)})
}
