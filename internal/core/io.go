package core

import (
	"io"
	"time"

	"rftp/internal/hostmodel"
	"rftp/internal/verbs"
	"rftp/internal/wire"
)

// BlockSource supplies payload to a transfer (the "application loads
// data from disk directly to the memory block" stage of the source FSM).
//
// Load fills p with up to len(p) bytes and calls done exactly once, from
// any goroutine or loop. n is the number of bytes produced, eof marks
// the end of the dataset (a final short or empty block is allowed). For
// modeled transfers p is nil and cap is the requested length; the
// implementation only decides n and charges whatever CPU cost applies.
//
// The protocol issues Loads strictly in sequence order and never issues
// the next Load for a session before the previous one completed, so
// implementations may be stateful readers.
type BlockSource interface {
	Load(p []byte, cap int, done func(n int, eof bool, err error))
}

// BlockSourceAt is an offset-addressed BlockSource: LoadAt fills p with
// up to capacity bytes starting at byte offset off of the dataset, and
// is safe to call with multiple loads outstanding (the paper's source
// FSM keeps many blocks in `loading` at once via a dedicated
// data-loading thread and O_DIRECT RAID reads).
//
// Contract: a load whose window lies strictly inside the dataset
// returns exactly capacity bytes with eof=false; the load straddling
// the end returns the remaining n>0 bytes with eof=true; loads at or
// past the end return (0, true, nil). The protocol issues LoadAts at
// consecutive capacity-strided offsets and may observe completions in
// any order; blocks over-issued past EOF are discarded.
//
// Sources that cannot honor this (streaming readers with no known
// length) should implement only BlockSource and stay on the serial
// one-load-at-a-time path.
type BlockSourceAt interface {
	BlockSource
	LoadAt(p []byte, capacity int, off uint64, done func(n int, eof bool, err error))
}

// BlockSink consumes delivered payload in order (the "offloading data
// into file system" stage of the sink FSM). payload is nil for modeled
// transfers; modelLen is the payload length either way. done must be
// called exactly once.
type BlockSink interface {
	Store(hdr wire.BlockHeader, payload []byte, modelLen int, done func(err error))
}

// OffsetSink marks a BlockSink whose Store places payload by
// hdr.Offset, independent of call order, and tolerates multiple Stores
// outstanding at once. The sink then runs the offset fast path: blocks
// are stored the moment they arrive — no waiting behind reassembly
// holes — bounded by Config.StoreDepth. Sinks that append to a stream
// (WriterSink) must not implement this; they keep the in-order
// delivery path.
type OffsetSink interface {
	BlockSink
	// OffsetStores reports whether the fast path may be used; a wrapper
	// can return false to force in-order delivery for a particular
	// destination.
	OffsetStores() bool
}

// ReaderSource adapts an io.Reader. Reads happen synchronously in the
// caller of Load (the protocol loop for in-process fabrics).
type ReaderSource struct{ R io.Reader }

// Load implements BlockSource.
func (s ReaderSource) Load(p []byte, cap int, done func(int, bool, error)) {
	n, err := io.ReadFull(s.R, p)
	switch err {
	case nil:
		done(n, false, nil)
	case io.EOF, io.ErrUnexpectedEOF:
		done(n, true, nil)
	default:
		done(n, false, err)
	}
}

// WriterSink adapts an io.Writer.
type WriterSink struct{ W io.Writer }

// Store implements BlockSink.
func (s WriterSink) Store(hdr wire.BlockHeader, payload []byte, modelLen int, done func(error)) {
	_, err := s.W.Write(payload)
	done(err)
}

// DiscardSink drops payload (the /dev/null sink).
type DiscardSink struct{}

// Store implements BlockSink.
func (DiscardSink) Store(hdr wire.BlockHeader, payload []byte, modelLen int, done func(error)) {
	done(nil)
}

// ModelSource is the simulation-scale data generator: it models reading
// Total bytes from /dev/zero, charging NsPerByte of CPU per byte to the
// loader thread (the paper measured 50% of one core at 25 Gbps). A
// separate loader thread mirrors the middleware's dedicated data-loading
// thread. It is offset-addressed (BlockSourceAt), so the protocol keeps
// LoadDepth loads pipelined through the loader; set Loaders to spread
// concurrent loads round-robin over several threads (parallel loader
// threads on independent cores).
type ModelSource struct {
	Total     int64
	Loader    *hostmodel.Thread
	Loaders   []*hostmodel.Thread
	NsPerByte float64

	produced int64
	nextTh   int
}

// Load implements BlockSource (serial cursor-based loads).
func (s *ModelSource) Load(p []byte, capacity int, done func(int, bool, error)) {
	remaining := s.Total - s.produced
	n := int64(capacity)
	if n > remaining {
		n = remaining
	}
	s.produced += n
	eof := s.produced >= s.Total
	cost := hostmodel.ScaleNsPerByte(s.NsPerByte, int(n))
	s.loaderThread().Post(cost, func() { done(int(n), eof, nil) })
}

// LoadAt implements BlockSourceAt: stateless offset-addressed loads,
// safe with many outstanding.
func (s *ModelSource) LoadAt(p []byte, capacity int, off uint64, done func(int, bool, error)) {
	remaining := s.Total - int64(off)
	if remaining <= 0 {
		done(0, true, nil)
		return
	}
	n := int64(capacity)
	if n > remaining {
		n = remaining
	}
	eof := int64(off)+n >= s.Total
	cost := hostmodel.ScaleNsPerByte(s.NsPerByte, int(n))
	s.loaderThread().Post(cost, func() { done(int(n), eof, nil) })
}

// loaderThread picks the next loader round-robin (Loaders when set,
// else the single Loader).
func (s *ModelSource) loaderThread() *hostmodel.Thread {
	if len(s.Loaders) == 0 {
		return s.Loader
	}
	t := s.Loaders[s.nextTh%len(s.Loaders)]
	s.nextTh++
	return t
}

// ModelSink is the simulation-scale consumer: it charges NsPerByte per
// byte to the storer thread (near zero for /dev/null, higher for POSIX
// disk writes) and optionally an extra fixed PerBlock cost (syscalls).
// It is offset-addressed (its accounting is order-independent), so the
// sink stores arriving blocks immediately instead of waiting behind
// reassembly holes; set Storers to spread concurrent stores over
// several threads.
type ModelSink struct {
	Storer    *hostmodel.Thread
	Storers   []*hostmodel.Thread
	NsPerByte float64
	PerBlock  time.Duration

	stored int64
	nextTh int
}

// Store implements BlockSink.
func (s *ModelSink) Store(hdr wire.BlockHeader, payload []byte, modelLen int, done func(error)) {
	s.stored += int64(modelLen)
	cost := hostmodel.ScaleNsPerByte(s.NsPerByte, modelLen) + s.PerBlock
	s.storerThread().Post(cost, func() { done(nil) })
}

// OffsetStores implements OffsetSink: modeled stores are placement-free.
func (s *ModelSink) OffsetStores() bool { return true }

// storerThread picks the next storer round-robin (Storers when set,
// else the single Storer).
func (s *ModelSink) storerThread() *hostmodel.Thread {
	if len(s.Storers) == 0 {
		return s.Storer
	}
	t := s.Storers[s.nextTh%len(s.Storers)]
	s.nextTh++
	return t
}

// Stored returns total bytes consumed.
func (s *ModelSink) Stored() int64 { return s.stored }

// LoopSource serializes another BlockSource's completions onto a loop:
// used when a source completes on a foreign thread and the protocol
// needs the callback on its own loop. The protocol core already does
// this internally; LoopSource is for compositions in tests and tools.
type LoopSource struct {
	Inner BlockSource
	Loop  verbs.Loop
}

// Load implements BlockSource.
func (s LoopSource) Load(p []byte, capacity int, done func(int, bool, error)) {
	s.Inner.Load(p, capacity, func(n int, eof bool, err error) {
		s.Loop.Post(0, func() { done(n, eof, err) })
	})
}
