package core

import (
	"io"
	"time"

	"rftp/internal/hostmodel"
	"rftp/internal/verbs"
	"rftp/internal/wire"
)

// BlockSource supplies payload to a transfer (the "application loads
// data from disk directly to the memory block" stage of the source FSM).
//
// Load fills p with up to len(p) bytes and calls done exactly once, from
// any goroutine or loop. n is the number of bytes produced, eof marks
// the end of the dataset (a final short or empty block is allowed). For
// modeled transfers p is nil and cap is the requested length; the
// implementation only decides n and charges whatever CPU cost applies.
//
// The protocol issues Loads strictly in sequence order and never issues
// the next Load for a session before the previous one completed, so
// implementations may be stateful readers.
type BlockSource interface {
	Load(p []byte, cap int, done func(n int, eof bool, err error))
}

// BlockSink consumes delivered payload in order (the "offloading data
// into file system" stage of the sink FSM). payload is nil for modeled
// transfers; modelLen is the payload length either way. done must be
// called exactly once.
type BlockSink interface {
	Store(hdr wire.BlockHeader, payload []byte, modelLen int, done func(err error))
}

// ReaderSource adapts an io.Reader. Reads happen synchronously in the
// caller of Load (the protocol loop for in-process fabrics).
type ReaderSource struct{ R io.Reader }

// Load implements BlockSource.
func (s ReaderSource) Load(p []byte, cap int, done func(int, bool, error)) {
	n, err := io.ReadFull(s.R, p)
	switch err {
	case nil:
		done(n, false, nil)
	case io.EOF, io.ErrUnexpectedEOF:
		done(n, true, nil)
	default:
		done(n, false, err)
	}
}

// WriterSink adapts an io.Writer.
type WriterSink struct{ W io.Writer }

// Store implements BlockSink.
func (s WriterSink) Store(hdr wire.BlockHeader, payload []byte, modelLen int, done func(error)) {
	_, err := s.W.Write(payload)
	done(err)
}

// DiscardSink drops payload (the /dev/null sink).
type DiscardSink struct{}

// Store implements BlockSink.
func (DiscardSink) Store(hdr wire.BlockHeader, payload []byte, modelLen int, done func(error)) {
	done(nil)
}

// ModelSource is the simulation-scale data generator: it models reading
// Total bytes from /dev/zero, charging NsPerByte of CPU per byte to the
// loader thread (the paper measured 50% of one core at 25 Gbps). A
// separate loader thread mirrors the middleware's dedicated data-loading
// thread.
type ModelSource struct {
	Total     int64
	Loader    *hostmodel.Thread
	NsPerByte float64

	produced int64
}

// Load implements BlockSource.
func (s *ModelSource) Load(p []byte, capacity int, done func(int, bool, error)) {
	remaining := s.Total - s.produced
	n := int64(capacity)
	if n > remaining {
		n = remaining
	}
	s.produced += n
	eof := s.produced >= s.Total
	cost := hostmodel.ScaleNsPerByte(s.NsPerByte, int(n))
	s.Loader.Post(cost, func() { done(int(n), eof, nil) })
}

// ModelSink is the simulation-scale consumer: it charges NsPerByte per
// byte to the storer thread (near zero for /dev/null, higher for POSIX
// disk writes) and optionally an extra fixed PerBlock cost (syscalls).
type ModelSink struct {
	Storer    *hostmodel.Thread
	NsPerByte float64
	PerBlock  time.Duration

	stored int64
}

// Store implements BlockSink.
func (s *ModelSink) Store(hdr wire.BlockHeader, payload []byte, modelLen int, done func(error)) {
	s.stored += int64(modelLen)
	cost := hostmodel.ScaleNsPerByte(s.NsPerByte, modelLen) + s.PerBlock
	s.Storer.Post(cost, func() { done(nil) })
}

// Stored returns total bytes consumed.
func (s *ModelSink) Stored() int64 { return s.stored }

// LoopSource serializes another BlockSource's completions onto a loop:
// used when a source completes on a foreign thread and the protocol
// needs the callback on its own loop. The protocol core already does
// this internally; LoopSource is for compositions in tests and tools.
type LoopSource struct {
	Inner BlockSource
	Loop  verbs.Loop
}

// Load implements BlockSource.
func (s LoopSource) Load(p []byte, capacity int, done func(int, bool, error)) {
	s.Inner.Load(p, capacity, func(n int, eof bool, err error) {
		s.Loop.Post(0, func() { done(n, eof, err) })
	})
}
