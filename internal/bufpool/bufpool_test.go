package bufpool

import "testing"

func TestGetLengthAndClassCapacity(t *testing.T) {
	cases := map[int]int{
		1:           512,
		512:         512,
		513:         1024,
		4096:        4096,
		5000:        8192,
		1 << 20:     1 << 20,
		1<<20 + 1:   2 << 20,
		4<<20 - 100: 4 << 20,
	}
	for n, wantCap := range cases {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d): len = %d", n, len(b))
		}
		if cap(b) != wantCap {
			t.Fatalf("Get(%d): cap = %d, want %d", n, cap(b), wantCap)
		}
		Put(b)
	}
}

func TestReuseAfterPut(t *testing.T) {
	b := Get(4096)
	b[0] = 0xAB
	Put(b)
	// The next Get of the same class should hand back the pooled
	// buffer (single-goroutine, so the per-P cache hits).
	c := Get(100)
	if cap(c) != 512 {
		t.Fatalf("class mixed up: cap = %d", cap(c))
	}
	d := Get(2049)
	if len(d) != 2049 || cap(d) != 4096 {
		t.Fatalf("Get(2049): len %d cap %d", len(d), cap(d))
	}
}

func TestZeroAndOversize(t *testing.T) {
	if Get(0) != nil || Get(-5) != nil {
		t.Fatal("non-nil buffer for n <= 0")
	}
	huge := Get(1<<26 + 1)
	if len(huge) != 1<<26+1 {
		t.Fatalf("oversize len = %d", len(huge))
	}
	Put(huge) // not a class size: dropped, must not panic
	Put(nil)  // must not panic
	Put(make([]byte, 100, 100))
}
