package bufpool

import "testing"

func TestGetLengthAndClassCapacity(t *testing.T) {
	cases := map[int]int{
		1:           512,
		512:         512,
		513:         1024,
		4096:        4096,
		5000:        8192,
		1 << 20:     1 << 20,
		1<<20 + 1:   2 << 20,
		4<<20 - 100: 4 << 20,
	}
	for n, wantCap := range cases {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d): len = %d", n, len(b))
		}
		if cap(b) != wantCap {
			t.Fatalf("Get(%d): cap = %d, want %d", n, cap(b), wantCap)
		}
		Put(b)
	}
}

func TestReuseAfterPut(t *testing.T) {
	b := Get(4096)
	b[0] = 0xAB
	Put(b)
	// The next Get of the same class should hand back the pooled
	// buffer (single-goroutine, so the per-P cache hits).
	c := Get(100)
	if cap(c) != 512 {
		t.Fatalf("class mixed up: cap = %d", cap(c))
	}
	d := Get(2049)
	if len(d) != 2049 || cap(d) != 4096 {
		t.Fatalf("Get(2049): len %d cap %d", len(d), cap(d))
	}
}

func TestZeroAndOversize(t *testing.T) {
	if Get(0) != nil || Get(-5) != nil {
		t.Fatal("non-nil buffer for n <= 0")
	}
	huge := Get(1<<26 + 1)
	if len(huge) != 1<<26+1 {
		t.Fatalf("oversize len = %d", len(huge))
	}
	Put(huge) // not a class size: dropped, must not panic
	Put(nil)  // must not panic
	Put(make([]byte, 100, 100))
}

// TestClassBoundaries pins Get's behavior exactly at, one over, and one
// under each interesting class edge, including both ends of the pooled
// range.
func TestClassBoundaries(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{511, 512},  // one under the smallest class
		{512, 512},  // exactly the smallest class
		{513, 1024}, // one over: next class up
		{1023, 1024},
		{1024, 1024},
		{1025, 2048},
		{1<<26 - 1, 1 << 26}, // one under the largest class
		{1 << 26, 1 << 26},   // exactly the largest pooled class
	}
	for _, c := range cases {
		b := Get(c.n)
		if len(b) != c.n || cap(b) != c.wantCap {
			t.Fatalf("Get(%d): len %d cap %d, want len %d cap %d",
				c.n, len(b), cap(b), c.n, c.wantCap)
		}
		Put(b)
	}
	// One over the largest class: plain allocation, exact capacity.
	huge := Get(1<<26 + 1)
	if len(huge) != 1<<26+1 || cap(huge) != 1<<26+1 {
		t.Fatalf("oversize: len %d cap %d", len(huge), cap(huge))
	}
}

// TestPutWrongCapacityDoesNotPoisonClass puts a buffer whose capacity
// is a power of two below the smallest class; it must be dropped, not
// filed into class 0 where a later Get(512) would reslice past its
// capacity.
func TestPutWrongCapacityDoesNotPoisonClass(t *testing.T) {
	Put(make([]byte, 256))      // power of two, but under minShift
	Put(make([]byte, 0, 1<<30)) // power of two, but over maxShift
	for i := 0; i < 64; i++ {   // drain anything cached in class 0
		b := Get(512)
		if cap(b) < 512 {
			t.Fatalf("class 0 poisoned: Get(512) cap = %d", cap(b))
		}
	}
}

// TestZeroLengthRoundTrip pins the documented n <= 0 contract.
func TestZeroLengthRoundTrip(t *testing.T) {
	if b := Get(0); b != nil {
		t.Fatalf("Get(0) = %v, want nil", b)
	}
	Put([]byte{}) // zero-length, zero-cap: silently dropped
}
