// Package bufpool provides size-classed byte-buffer pools for the
// real-byte fabrics' receive and copy paths.
//
// Inbound SEND payloads (and any frame that cannot be placed directly
// into a registered memory region) need transient buffers; allocating
// one per frame is what made the receive path allocation-bound. Get
// hands out a buffer from the smallest power-of-two class that fits,
// and Put returns it for reuse, so a steady-state transfer recycles a
// handful of buffers instead of producing garbage at wire rate.
package bufpool

import (
	"math/bits"
	"sync"
)

const (
	// minShift is the smallest class (512 B) so tiny control payloads
	// do not fragment the classes.
	minShift = 9
	// maxShift is the largest pooled class (64 MiB); larger requests
	// fall through to plain allocation.
	maxShift = 26
)

var classes [maxShift - minShift + 1]sync.Pool

// classFor returns the pool index for a capacity, or -1 when the size
// is outside the pooled range.
func classFor(n int) int {
	if n <= 0 || n > 1<<maxShift {
		return -1
	}
	s := bits.Len(uint(n - 1)) // ceil(log2 n)
	if s < minShift {
		s = minShift
	}
	return s - minShift
}

// Get returns a buffer with len(buf) == n from the smallest class that
// fits. Contents are unspecified (callers overwrite). n <= 0 returns
// nil; n beyond the largest class is allocated directly.
func Get(n int) []byte {
	if n <= 0 {
		return nil
	}
	c := classFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	if v := classes[c].Get(); v != nil {
		return (*v.(*[]byte))[:n]
	}
	return make([]byte, n, 1<<(c+minShift))
}

// Put returns a buffer obtained from Get to its class. Buffers whose
// capacity is not an exact class size (or that are nil) are dropped to
// the garbage collector instead, so Put is safe on any slice.
func Put(buf []byte) {
	c := cap(buf)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	idx := classFor(c)
	if idx < 0 || 1<<(idx+minShift) != c {
		return
	}
	b := buf[:c]
	classes[idx].Put(&b)
}
