package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func buildPromTestRegistry() *Registry {
	root := NewRegistry("conn")
	root.Counter("blocks").Add(12)
	root.Gauge("inflight").Set(4)
	root.Gauge("inflight").Set(2) // max stays 4
	h := root.Histogram("lat", 10, 100, 1000)
	for _, v := range []int64{5, 50, 50, 500, 5000} {
		h.Observe(v)
	}
	ch := root.Child("chan0")
	ch.Counter("bytes").Add(1 << 20)
	return root
}

func TestWritePrometheus(t *testing.T) {
	var sb strings.Builder
	if err := buildPromTestRegistry().Snapshot().WritePrometheus(&sb, "rftp"); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE rftp_blocks counter",
		`rftp_blocks{path="conn"} 12`,
		"# TYPE rftp_inflight gauge",
		`rftp_inflight{path="conn"} 2`,
		`rftp_inflight_max{path="conn"} 4`,
		"# TYPE rftp_lat histogram",
		`rftp_lat_bucket{path="conn",le="10"} 1`,
		`rftp_lat_bucket{path="conn",le="100"} 3`,
		`rftp_lat_bucket{path="conn",le="1000"} 4`,
		`rftp_lat_bucket{path="conn",le="+Inf"} 5`,
		`rftp_lat_sum{path="conn"} 5605`,
		`rftp_lat_count{path="conn"} 5`,
		`rftp_bytes{path="conn/chan0"} 1048576`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Families must be contiguous: every line of a family directly
	// follows its TYPE header or another line of the same family.
	seen := map[string]bool{}
	var cur string
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			name := strings.Fields(line)[2]
			if seen[name] {
				t.Fatalf("family %s emitted twice", name)
			}
			seen[name] = true
			cur = name
			continue
		}
		base := line[:strings.IndexByte(line, '{')]
		base = strings.TrimSuffix(base, "_bucket")
		base = strings.TrimSuffix(base, "_sum")
		base = strings.TrimSuffix(base, "_count")
		if base != cur && base != cur+"_max" && cur != base+"_max" {
			if !seen[base] && base != strings.TrimSuffix(cur, "_max") {
				t.Fatalf("sample %q outside its family (current %q)", line, cur)
			}
		}
	}
}

// TestPrometheusJSONParity pins that the JSON snapshot and the
// Prometheus exposition describe the same histogram distribution: the
// cumulative le-bucket counts reconstruct exactly the JSON
// Bounds/Counts pairs.
func TestPrometheusJSONParity(t *testing.T) {
	snap := buildPromTestRegistry().Snapshot()

	// The JSON side.
	js, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	hj := back.Histogram("lat")
	if len(hj.Bounds) == 0 || len(hj.Counts) != len(hj.Bounds)+1 {
		t.Fatalf("JSON histogram lost its bounds: %+v", hj)
	}

	// The Prometheus side: parse the bucket lines back.
	var sb strings.Builder
	if err := snap.WritePrometheus(&sb, "rftp"); err != nil {
		t.Fatal(err)
	}
	type bucket struct {
		le  string
		cum int64
	}
	var buckets []bucket
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "rftp_lat_bucket{") {
			continue
		}
		le := line[strings.Index(line, `le="`)+4:]
		le = le[:strings.IndexByte(le, '"')]
		var cum int64
		fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &cum)
		buckets = append(buckets, bucket{le, cum})
	}
	if len(buckets) != len(hj.Bounds)+1 {
		t.Fatalf("prometheus buckets = %d, want %d", len(buckets), len(hj.Bounds)+1)
	}
	var cum int64
	for i, bound := range hj.Bounds {
		cum += hj.Counts[i]
		wantLE := strconv.FormatFloat(float64(bound), 'g', -1, 64)
		if buckets[i].le != wantLE || buckets[i].cum != cum {
			t.Errorf("bucket %d: prometheus (%s,%d), json (%s,%d)", i, buckets[i].le, buckets[i].cum, wantLE, cum)
		}
	}
	if last := buckets[len(buckets)-1]; last.le != "+Inf" || last.cum != hj.Count {
		t.Errorf("+Inf bucket = %+v, want count %d", last, hj.Count)
	}
}

func TestWritePrometheusNilAndEmpty(t *testing.T) {
	var s *Snapshot
	var sb strings.Builder
	if err := s.WritePrometheus(&sb, ""); err != nil || sb.Len() != 0 {
		t.Fatalf("nil snapshot wrote %q, err %v", sb.String(), err)
	}
	if err := NewRegistry("empty").Snapshot().WritePrometheus(&sb, ""); err != nil {
		t.Fatal(err)
	}
}

func TestSanitizeMetric(t *testing.T) {
	if got := sanitizeMetric("span_load-ns.total"); got != "span_load_ns_total" {
		t.Errorf("sanitize = %q", got)
	}
}

func TestHandlerRoutes(t *testing.T) {
	root := buildPromTestRegistry()
	h := Handler(root)

	get := func(path string) (int, string, string) {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		return rr.Code, rr.Header().Get("Content-Type"), rr.Body.String()
	}

	code, ct, body := get("/metrics")
	if code != 200 || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics = %d %s", code, ct)
	}
	if !strings.Contains(body, "# TYPE rftp_blocks counter") {
		t.Fatalf("/metrics body:\n%s", body)
	}

	for _, path := range []string{"/", "/debug/telemetry"} {
		code, ct, body = get(path)
		if code != 200 || !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s = %d %s", path, code, ct)
		}
		var snap Snapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("%s JSON: %v", path, err)
		}
		if snap.Counter("blocks") != 12 {
			t.Fatalf("%s snapshot lost counters", path)
		}
		if h := snap.Histogram("lat"); len(h.Bounds) == 0 {
			t.Fatalf("%s histogram has no bounds", path)
		}
	}

	code, ct, body = get("/debug/telemetry?text=1")
	if code != 200 || !strings.HasPrefix(ct, "text/plain") || !strings.Contains(body, "buckets=[") {
		t.Fatalf("text rendering = %d %s:\n%s", code, ct, body)
	}

	if code, _, _ = get("/nope"); code != 404 {
		t.Fatalf("unknown path = %d, want 404", code)
	}

	rr := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 404 {
		t.Fatalf("nil registry = %d, want 404", rr.Code)
	}
}
