package telemetry

import (
	"time"

	"rftp/internal/verbs"
)

// maxOpcode bounds the per-opcode counter arrays; verbs opcodes are
// small consecutive constants starting at 1.
const maxOpcode = int(verbs.OpRecv) + 1

// FabricMetrics counts work requests and bytes at the device layer: WRs
// posted and completed by opcode, receive-side deliveries, bytes on the
// wire in each direction, and RNR (receiver-not-ready) events. All
// fabrics share this one vocabulary so RFTP runs are comparable across
// simfabric, chanfabric, and netfabric.
//
// A nil *FabricMetrics is valid and free: every method no-ops.
type FabricMetrics struct {
	posted    [maxOpcode]Counter
	completed [maxOpcode]Counter
	txBytes   Counter
	rxBytes   Counter
	rnr       Counter
	// Control-plane accounting: SEND-opcode messages and their payload
	// bytes, kept separate from bulk tx so the control/data split is
	// visible per device.
	ctrlMsgs  Counter
	ctrlBytes Counter
	// Vectored-write accounting: batches drained to the wire and frames
	// carried; frames/batches is the achieved write coalescing.
	txBatches Counter
	txFrames  Counter
	// Wire-entry/exit stamps for the span layer's wire stage: queue
	// delay (WR posted → drained to the wire) and ack round trip (WR
	// posted → completion observed). Histogram pointers rather than
	// values so a metrics-less device pays nothing beyond nil checks.
	wireQueue *Histogram
	wireRTT   *Histogram
}

// NewFabricMetrics creates fabric metrics registered under reg (a "wr_"
// counter per opcode plus byte/RNR counters). A nil registry yields
// standalone metrics that still count but appear in no snapshot —
// callers that want zero cost should keep the *FabricMetrics nil
// instead.
func NewFabricMetrics(reg *Registry) *FabricMetrics {
	m := &FabricMetrics{
		wireQueue: NewHistogram(DurationBuckets()...),
		wireRTT:   NewHistogram(DurationBuckets()...),
	}
	if reg != nil {
		reg.mu.Lock()
		for op := verbs.OpSend; op <= verbs.OpRecv; op++ {
			reg.counters["wr_posted_"+op.String()] = &m.posted[op]
			reg.counters["wr_completed_"+op.String()] = &m.completed[op]
		}
		reg.counters["tx_bytes"] = &m.txBytes
		reg.counters["rx_bytes"] = &m.rxBytes
		reg.counters["rnr_events"] = &m.rnr
		reg.counters["ctrl_msgs"] = &m.ctrlMsgs
		reg.counters["ctrl_bytes"] = &m.ctrlBytes
		reg.counters["tx_batches"] = &m.txBatches
		reg.counters["tx_frames"] = &m.txFrames
		reg.hists["wire_queue_ns"] = m.wireQueue
		reg.hists["wire_rtt_ns"] = m.wireRTT
		reg.mu.Unlock()
	}
	return m
}

// Posted records a work request entering the send queue with its wire
// length.
func (m *FabricMetrics) Posted(op verbs.Opcode, bytes int) {
	if m == nil {
		return
	}
	if int(op) < maxOpcode {
		m.posted[op].Add(1)
	}
	m.txBytes.Add(int64(bytes))
}

// Completed records a work completion by opcode.
func (m *FabricMetrics) Completed(op verbs.Opcode) {
	if m == nil {
		return
	}
	if int(op) < maxOpcode {
		m.completed[op].Add(1)
	}
}

// Tx records bytes leaving toward the wire without a WR (framing,
// acks). Fabrics that account bytes at post time use Posted instead.
func (m *FabricMetrics) Tx(bytes int) {
	if m == nil {
		return
	}
	m.txBytes.Add(int64(bytes))
}

// Rx records bytes arriving from the wire.
func (m *FabricMetrics) Rx(bytes int) {
	if m == nil {
		return
	}
	m.rxBytes.Add(int64(bytes))
}

// Ctrl records one control-plane message (SEND opcode) of the given
// payload length leaving this device.
func (m *FabricMetrics) Ctrl(bytes int) {
	if m == nil {
		return
	}
	m.ctrlMsgs.Add(1)
	m.ctrlBytes.Add(int64(bytes))
}

// TxBatch records one vectored write that carried the given number of
// frames.
func (m *FabricMetrics) TxBatch(frames int) {
	if m == nil {
		return
	}
	m.txBatches.Add(1)
	m.txFrames.Add(int64(frames))
}

// WireQueue records the delay between a WR being posted and its bytes
// draining to the wire (send-queue residency inside the fabric).
func (m *FabricMetrics) WireQueue(d time.Duration) {
	if m == nil {
		return
	}
	m.wireQueue.Observe(int64(d))
}

// WireRTT records the delay between a WR being posted and its
// completion being observed (queue + wire + ack).
func (m *FabricMetrics) WireRTT(d time.Duration) {
	if m == nil {
		return
	}
	m.wireRTT.Observe(int64(d))
}

// WireQueueSnapshot returns the wire queue-delay distribution.
func (m *FabricMetrics) WireQueueSnapshot() HistogramSnapshot {
	if m == nil {
		return HistogramSnapshot{}
	}
	return m.wireQueue.Snapshot()
}

// WireRTTSnapshot returns the wire ack round-trip distribution.
func (m *FabricMetrics) WireRTTSnapshot() HistogramSnapshot {
	if m == nil {
		return HistogramSnapshot{}
	}
	return m.wireRTT.Snapshot()
}

// CtrlMsgs returns control-plane messages sent.
func (m *FabricMetrics) CtrlMsgs() int64 {
	if m == nil {
		return 0
	}
	return m.ctrlMsgs.Value()
}

// CtrlBytes returns control-plane payload bytes sent.
func (m *FabricMetrics) CtrlBytes() int64 {
	if m == nil {
		return 0
	}
	return m.ctrlBytes.Value()
}

// TxBatches returns vectored writes drained to the wire.
func (m *FabricMetrics) TxBatches() int64 {
	if m == nil {
		return 0
	}
	return m.txBatches.Value()
}

// TxFrames returns frames carried by those vectored writes.
func (m *FabricMetrics) TxFrames() int64 {
	if m == nil {
		return 0
	}
	return m.txFrames.Value()
}

// RNR records one receiver-not-ready event (NAK, park, or stall
// depending on the fabric).
func (m *FabricMetrics) RNR() {
	if m == nil {
		return
	}
	m.rnr.Add(1)
}

// TxBytes returns total bytes posted toward the wire.
func (m *FabricMetrics) TxBytes() int64 {
	if m == nil {
		return 0
	}
	return m.txBytes.Value()
}

// RxBytes returns total bytes received from the wire.
func (m *FabricMetrics) RxBytes() int64 {
	if m == nil {
		return 0
	}
	return m.rxBytes.Value()
}

// RNRCount returns total receiver-not-ready events.
func (m *FabricMetrics) RNRCount() int64 {
	if m == nil {
		return 0
	}
	return m.rnr.Value()
}

// PostedCount returns WRs posted with the given opcode.
func (m *FabricMetrics) PostedCount(op verbs.Opcode) int64 {
	if m == nil || int(op) >= maxOpcode {
		return 0
	}
	return m.posted[op].Value()
}

// CompletedCount returns completions observed with the given opcode.
func (m *FabricMetrics) CompletedCount(op verbs.Opcode) int64 {
	if m == nil || int(op) >= maxOpcode {
		return 0
	}
	return m.completed[op].Value()
}
