// Package telemetry is the unified instrumentation layer for the
// middleware: allocation-conscious atomic counters, gauges, and
// fixed-bucket histograms, organized into hierarchical registries
// (per-connection, per-session, per-channel) that snapshot into text or
// JSON for the -stats flags, the rftpd HTTP endpoint, and the bench
// report summaries.
//
// The paper's diagnostic findings (GridFTP's single-core ceiling, the
// credit-ramp dynamics of Figure 10) were only visible because the
// middleware was instrumented; this package makes that instrumentation a
// first-class subsystem instead of ad-hoc struct fields.
//
// Every metric type is safe for concurrent use and nil-safe: methods on
// a nil *Counter/*Gauge/*Histogram/*Registry are no-ops, so a component
// whose telemetry was never attached pays one nil check per event and
// allocates nothing.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a cumulative atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value gauge that also tracks its high-water mark.
type Gauge struct{ v, max atomic.Int64 }

// Set records the current value. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the last value set (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark (0 for a nil gauge).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// GaugeSnapshot is the exported state of a gauge.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Histogram is a fixed-bucket histogram: bucket i counts observations
// v <= Bounds[i]; one implicit overflow bucket counts the rest. Bounds
// are set at construction and never change, so Observe is a binary
// search plus one atomic add.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last = overflow
	count  atomic.Int64
	sum    atomic.Int64
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds. Panics on empty or unsorted bounds (always a construction
// bug).
func NewHistogram(bounds ...int64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending at %d: %d <= %d", i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot captures a consistent-enough view of the histogram (bucket
// counts are read individually; concurrent observers may skew totals by
// in-flight observations, never lose them).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is the exported state of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra final
	// entry for the overflow bucket.
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Merge combines two snapshots of histograms with identical bounds.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) (HistogramSnapshot, error) {
	if s.Count == 0 && len(s.Bounds) == 0 {
		return o, nil
	}
	if o.Count == 0 && len(o.Bounds) == 0 {
		return s, nil
	}
	if len(s.Bounds) != len(o.Bounds) {
		return HistogramSnapshot{}, fmt.Errorf("telemetry: merging histograms with %d vs %d buckets", len(s.Bounds), len(o.Bounds))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return HistogramSnapshot{}, fmt.Errorf("telemetry: merging histograms with different bounds at %d: %d vs %d", i, s.Bounds[i], o.Bounds[i])
		}
	}
	out := HistogramSnapshot{
		Bounds: append([]int64(nil), s.Bounds...),
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out, nil
}

// bucketsText renders the populated buckets with their upper bounds as
// " buckets=[≤b:n ...]" (empty string for an empty histogram), so the
// text rendering exposes the same distribution the JSON Bounds/Counts
// fields and the Prometheus le-labelled buckets carry.
func (s HistogramSnapshot) bucketsText() string {
	if s.Count == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString(" buckets=[")
	first := true
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		if i < len(s.Bounds) {
			fmt.Fprintf(&b, "≤%v:%d", time.Duration(s.Bounds[i]), c)
		} else {
			fmt.Fprintf(&b, ">%v:%d", time.Duration(s.Bounds[len(s.Bounds)-1]), c)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile approximates the q-quantile (0 < q <= 1) by linear
// interpolation within the bucket containing the target rank. The
// overflow bucket reports the last finite bound.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := int64(0)
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum)) / float64(c)
		return lo + int64(frac*float64(hi-lo))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// DurationBuckets returns the default latency buckets: 1-2-5 decades
// from 1 µs to 10 s, in nanoseconds. Suitable for post→completion,
// credit-grant→consume, and store latencies on any of the fabrics.
func DurationBuckets() []int64 {
	var out []int64
	for _, scale := range []int64{
		int64(time.Microsecond), int64(10 * time.Microsecond), int64(100 * time.Microsecond),
		int64(time.Millisecond), int64(10 * time.Millisecond), int64(100 * time.Millisecond),
		int64(time.Second),
	} {
		out = append(out, scale, 2*scale, 5*scale)
	}
	return append(out, int64(10*time.Second))
}

// LinearBuckets returns n ascending bounds start, start+width, ...
func LinearBuckets(start, width int64, n int) []int64 {
	if n <= 0 || width <= 0 {
		panic("telemetry: linear buckets need n > 0 and width > 0")
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)*width
	}
	return out
}

// ExpBuckets returns n ascending bounds start, start*factor, ...
func ExpBuckets(start int64, factor float64, n int) []int64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic("telemetry: exp buckets need n > 0, start > 0, factor > 1")
	}
	out := make([]int64, n)
	v := float64(start)
	for i := range out {
		out[i] = int64(v)
		if i > 0 && out[i] <= out[i-1] { // guard rounding collisions
			out[i] = out[i-1] + 1
		}
		v *= factor
	}
	return out
}

// Registry is a named collection of metrics plus child registries
// (fabric, source, per-channel, per-session...). Metric constructors are
// create-or-get, so independent components can share names safely.
type Registry struct {
	name string

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	children map[string]*Registry
}

// NewRegistry creates an empty registry.
func NewRegistry(name string) *Registry {
	return &Registry{
		name:     name,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		children: make(map[string]*Registry),
	}
}

// Name returns the registry's name ("" for nil).
func (r *Registry) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.hists[name] = h
	}
	return h
}

// Child returns the named child registry, creating it on first use.
func (r *Registry) Child(name string) *Registry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.children[name]
	if !ok {
		c = NewRegistry(name)
		r.children[name] = c
	}
	return c
}

// Snapshot captures the registry tree. Returns nil for a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	s := &Snapshot{Name: r.name}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]GaugeSnapshot, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	children := make([]*Registry, 0, len(r.children))
	for _, c := range r.children {
		children = append(children, c)
	}
	r.mu.Unlock()
	// Child snapshots taken outside r.mu: children have their own locks.
	for _, c := range children {
		s.Children = append(s.Children, c.Snapshot())
	}
	sort.Slice(s.Children, func(i, j int) bool { return s.Children[i].Name < s.Children[j].Name })
	return s
}

// Snapshot is a point-in-time export of a registry tree.
type Snapshot struct {
	Name       string                       `json:"name"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Children   []*Snapshot                  `json:"children,omitempty"`
}

// Find returns the descendant snapshot at the given path of child names
// (nil when absent).
func (s *Snapshot) Find(path ...string) *Snapshot {
	cur := s
	for _, name := range path {
		if cur == nil {
			return nil
		}
		var next *Snapshot
		for _, c := range cur.Children {
			if c.Name == name {
				next = c
				break
			}
		}
		cur = next
	}
	return cur
}

// Counter returns the named counter value (0 when absent).
func (s *Snapshot) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	return s.Counters[name]
}

// Histogram returns the named histogram snapshot (zero value when
// absent).
func (s *Snapshot) Histogram(name string) HistogramSnapshot {
	if s == nil {
		return HistogramSnapshot{}
	}
	return s.Histograms[name]
}

// WriteText renders the snapshot tree as indented text with sorted
// keys; histograms print count/mean/p50/p95.
func (s *Snapshot) WriteText(w io.Writer) error {
	return s.writeText(w, "")
}

func (s *Snapshot) writeText(w io.Writer, indent string) error {
	if s == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "%s%s:\n", indent, s.Name); err != nil {
		return err
	}
	inner := indent + "  "
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "%s%-28s %d\n", inner, name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		g := s.Gauges[name]
		if _, err := fmt.Fprintf(w, "%s%-28s %d (max %d)\n", inner, name, g.Value, g.Max); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "%s%-28s n=%d mean=%v p50=%v p95=%v%s\n",
			inner, name, h.Count,
			time.Duration(int64(h.Mean())), time.Duration(h.Quantile(0.50)), time.Duration(h.Quantile(0.95)),
			h.bucketsText()); err != nil {
			return err
		}
	}
	for _, c := range s.Children {
		if err := c.writeText(w, inner); err != nil {
			return err
		}
	}
	return nil
}

// MarshalJSONIndent renders the snapshot as indented JSON.
func (s *Snapshot) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
