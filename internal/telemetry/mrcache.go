package telemetry

import "rftp/internal/verbs"

// AttachMRCache mirrors a pin-down cache's events into reg as the
// mr_cache_hits / mr_cache_misses / mr_cache_evictions counters and
// the mr_cache_idle gauge. The counters are seeded with the cache's
// totals so far, so attaching after a pool already drew its
// registrations (the CLI wires telemetry up last) loses nothing. (The
// adapter lives here because verbs cannot import telemetry without a
// cycle.)
func AttachMRCache(reg *Registry, c *verbs.MRCache) {
	hits := reg.Counter("mr_cache_hits")
	misses := reg.Counter("mr_cache_misses")
	evictions := reg.Counter("mr_cache_evictions")
	idle := reg.Gauge("mr_cache_idle")
	h, m, ev := c.Stats()
	hits.Add(h)
	misses.Add(m)
	evictions.Add(ev)
	idle.Set(int64(c.Idle()))
	c.SetHooks(verbs.MRCacheHooks{
		Hit:      hits.Inc,
		Miss:     misses.Inc,
		Eviction: evictions.Inc,
		Idle:     idle.Set,
	})
}
