package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the snapshot tree in the Prometheus text
// exposition format. Every registry node contributes its metrics with
// the node's tree position as a `path` label, so one scrape covers the
// whole process (all connections, endpoints, fabrics) without name
// collisions:
//
//	rftp_blocks_posted{path="rftpd/conn1/source"} 123
//	rftp_span_wire_ns_bucket{path="rftpd/conn1/source",le="1e+06"} 17
//
// Histograms are rendered cumulatively from the same Bounds/Counts the
// JSON snapshot exports, so both paths describe identical
// distributions (TestPrometheusJSONParity pins this). Gauges emit the
// current value plus a <name>_max companion for the high-water mark.
func (s *Snapshot) WritePrometheus(w io.Writer, namespace string) error {
	if s == nil {
		return nil
	}
	if namespace == "" {
		namespace = "rftp"
	}
	f := newPromFamilies(namespace)
	f.collect(s, "")

	bw := bufio.NewWriter(w)
	names := make([]string, 0, len(f.families))
	for name := range f.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fam := f.families[name]
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, fam.kind)
		for _, line := range fam.lines {
			bw.WriteString(line)
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// promFamily is one metric family: all samples sharing a name, which
// the text format requires to be contiguous under a single TYPE line.
type promFamily struct {
	kind  string
	lines []string
}

type promFamilies struct {
	ns       string
	families map[string]*promFamily
}

func newPromFamilies(ns string) *promFamilies {
	return &promFamilies{ns: ns, families: make(map[string]*promFamily)}
}

func (f *promFamilies) family(name, kind string) *promFamily {
	fam := f.families[name]
	if fam == nil {
		fam = &promFamily{kind: kind}
		f.families[name] = fam
	}
	return fam
}

func (f *promFamilies) collect(s *Snapshot, prefix string) {
	path := s.Name
	if prefix != "" {
		path = prefix + "/" + s.Name
	}
	label := fmt.Sprintf("{path=%q}", path)
	for _, name := range sortedKeys(s.Counters) {
		m := f.ns + "_" + sanitizeMetric(name)
		fam := f.family(m, "counter")
		fam.lines = append(fam.lines, fmt.Sprintf("%s%s %d", m, label, s.Counters[name]))
	}
	for _, name := range sortedKeys(s.Gauges) {
		g := s.Gauges[name]
		m := f.ns + "_" + sanitizeMetric(name)
		fam := f.family(m, "gauge")
		fam.lines = append(fam.lines, fmt.Sprintf("%s%s %d", m, label, g.Value))
		fam = f.family(m+"_max", "gauge")
		fam.lines = append(fam.lines, fmt.Sprintf("%s_max%s %d", m, label, g.Max))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		m := f.ns + "_" + sanitizeMetric(name)
		fam := f.family(m, "histogram")
		var cum int64
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			fam.lines = append(fam.lines,
				fmt.Sprintf("%s_bucket{path=%q,le=%q} %d", m, path, formatBound(bound), cum))
		}
		fam.lines = append(fam.lines,
			fmt.Sprintf("%s_bucket{path=%q,le=\"+Inf\"} %d", m, path, h.Count),
			fmt.Sprintf("%s_sum%s %d", m, label, h.Sum),
			fmt.Sprintf("%s_count%s %d", m, label, h.Count))
	}
	for _, c := range s.Children {
		f.collect(c, path)
	}
}

// sanitizeMetric maps a registry metric name into the Prometheus
// charset [a-zA-Z0-9_].
func sanitizeMetric(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

// formatBound renders a bucket upper bound as Prometheus renders
// float64 le values.
func formatBound(b int64) string {
	return strings.TrimSuffix(fmt.Sprintf("%g", float64(b)), ".0")
}
