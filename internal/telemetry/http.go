package telemetry

import "net/http"

// Handler serves the registry tree as JSON, expvar-style: GET / returns
// the full snapshot; `?text=1` switches to the indented text rendering
// used by the -stats flags. Intended for the rftpd introspection
// endpoint (`rftpd -http :9110`).
func Handler(root *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := root.Snapshot()
		if snap == nil {
			http.Error(w, "telemetry disabled", http.StatusNotFound)
			return
		}
		if req.URL.Query().Get("text") != "" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			snap.WriteText(w)
			return
		}
		buf, err := snap.MarshalJSONIndent()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf)
		w.Write([]byte("\n"))
	})
}
