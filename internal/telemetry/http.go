package telemetry

import "net/http"

// Handler serves the registry tree with content negotiation by path:
//
//	/metrics          Prometheus text exposition (scrape endpoint)
//	/debug/telemetry  full snapshot as indented JSON (`?text=1` for the
//	                  indented text rendering used by the -stats flags)
//	/                 alias for /debug/telemetry (back-compat)
//
// Both renderings are produced from the same Snapshot, so a scraper
// and a JSON consumer always see identical distributions. Intended for
// the rftpd/rftp introspection endpoint (`-http :9110`).
func Handler(root *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := root.Snapshot()
		if snap == nil {
			http.Error(w, "telemetry disabled", http.StatusNotFound)
			return
		}
		switch req.URL.Path {
		case "/metrics":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			snap.WritePrometheus(w, "rftp")
			return
		case "/", "/debug/telemetry":
			if req.URL.Query().Get("text") != "" {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				snap.WriteText(w)
				return
			}
			buf, err := snap.MarshalJSONIndent()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(buf)
			w.Write([]byte("\n"))
		default:
			http.NotFound(w, req)
		}
	})
}
