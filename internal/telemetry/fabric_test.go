package telemetry

import (
	"testing"
	"time"

	"rftp/internal/verbs"
)

// TestFabricMetricsRegistration pins the registration paths: every
// counter and histogram NewFabricMetrics wires into the registry must
// be reachable in a snapshot under its documented name, and updates
// through the methods must be visible there.
func TestFabricMetricsRegistration(t *testing.T) {
	reg := NewRegistry("fabric")
	m := NewFabricMetrics(reg)

	m.Posted(verbs.OpWrite, 1024)
	m.Posted(verbs.OpSend, 64)
	m.Completed(verbs.OpWrite)
	m.Tx(10)
	m.Rx(2048)
	m.Ctrl(64)
	m.TxBatch(4)
	m.RNR()
	m.WireQueue(5 * time.Microsecond)
	m.WireRTT(40 * time.Microsecond)

	snap := reg.Snapshot()
	wantCounters := map[string]int64{
		"wr_posted_" + verbs.OpWrite.String():    1,
		"wr_posted_" + verbs.OpSend.String():     1,
		"wr_completed_" + verbs.OpWrite.String(): 1,
		"tx_bytes":                               1024 + 64 + 10,
		"rx_bytes":                               2048,
		"rnr_events":                             1,
		"ctrl_msgs":                              1,
		"ctrl_bytes":                             64,
		"tx_batches":                             1,
		"tx_frames":                              4,
	}
	for name, want := range wantCounters {
		if got := snap.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	// Every opcode has both registration rows, even unused ones.
	for op := verbs.OpSend; op <= verbs.OpRecv; op++ {
		for _, prefix := range []string{"wr_posted_", "wr_completed_"} {
			if _, ok := snap.Counters[prefix+op.String()]; !ok {
				t.Errorf("missing registration for %s%s", prefix, op)
			}
		}
	}
	for _, name := range []string{"wire_queue_ns", "wire_rtt_ns"} {
		h := snap.Histogram(name)
		if h.Count != 1 {
			t.Errorf("%s count = %d, want 1", name, h.Count)
		}
		if len(h.Bounds) == 0 {
			t.Errorf("%s snapshot missing bounds", name)
		}
	}
	if got := snap.Histogram("wire_rtt_ns").Sum; got != int64(40*time.Microsecond) {
		t.Errorf("wire_rtt_ns sum = %d", got)
	}

	// Getter round trips.
	if m.TxBytes() != 1098 || m.RxBytes() != 2048 || m.RNRCount() != 1 {
		t.Error("byte/RNR getters disagree")
	}
	if m.PostedCount(verbs.OpWrite) != 1 || m.CompletedCount(verbs.OpWrite) != 1 {
		t.Error("opcode getters disagree")
	}
	if m.CtrlMsgs() != 1 || m.CtrlBytes() != 64 || m.TxBatches() != 1 || m.TxFrames() != 4 {
		t.Error("ctrl/batch getters disagree")
	}
	if m.WireQueueSnapshot().Count != 1 || m.WireRTTSnapshot().Count != 1 {
		t.Error("wire histogram getters disagree")
	}
}

// TestFabricMetricsStandalone covers the nil-registry path: metrics
// still count (no snapshot) and never panic.
func TestFabricMetricsStandalone(t *testing.T) {
	m := NewFabricMetrics(nil)
	m.Posted(verbs.OpWrite, 100)
	m.WireQueue(time.Microsecond)
	m.WireRTT(time.Microsecond)
	if m.TxBytes() != 100 || m.WireRTTSnapshot().Count != 1 {
		t.Error("standalone metrics lost updates")
	}
}

// TestFabricMetricsNil covers the free path: every method and getter
// of a nil *FabricMetrics is a no-op.
func TestFabricMetricsNil(t *testing.T) {
	var m *FabricMetrics
	m.Posted(verbs.OpWrite, 1)
	m.Completed(verbs.OpWrite)
	m.Tx(1)
	m.Rx(1)
	m.Ctrl(1)
	m.TxBatch(1)
	m.RNR()
	m.WireQueue(time.Second)
	m.WireRTT(time.Second)
	if m.TxBytes() != 0 || m.RxBytes() != 0 || m.RNRCount() != 0 ||
		m.CtrlMsgs() != 0 || m.CtrlBytes() != 0 || m.TxBatches() != 0 || m.TxFrames() != 0 ||
		m.PostedCount(verbs.OpWrite) != 0 || m.CompletedCount(verbs.OpWrite) != 0 {
		t.Error("nil metrics returned non-zero")
	}
	if m.WireQueueSnapshot().Count != 0 || m.WireRTTSnapshot().Count != 0 {
		t.Error("nil wire snapshots non-empty")
	}
	// Out-of-range opcodes are ignored, not panics.
	big := verbs.Opcode(maxOpcode + 5)
	mm := NewFabricMetrics(nil)
	mm.Posted(big, 1)
	mm.Completed(big)
	if mm.PostedCount(big) != 0 || mm.CompletedCount(big) != 0 {
		t.Error("out-of-range opcode counted")
	}
}
