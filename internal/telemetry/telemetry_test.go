package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rftp/internal/verbs"
)

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter has value")
	}
	var g *Gauge
	g.Set(7)
	if g.Value() != 0 || g.Max() != 0 {
		t.Fatal("nil gauge has value")
	}
	var h *Histogram
	h.Observe(3)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 {
		t.Fatal("nil histogram counted")
	}
	if s := h.Snapshot(); s.Count != 0 || len(s.Bounds) != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", 1) != nil || r.Child("x") != nil {
		t.Fatal("nil registry returned non-nil metric")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
	// Metrics obtained from a nil registry must also be usable.
	r.Counter("x").Inc()
	r.Histogram("x", 1).Observe(1)
	r.Gauge("x").Set(1)
}

func TestGaugeMax(t *testing.T) {
	g := &Gauge{}
	for _, v := range []int64{3, 9, 2, 7} {
		g.Set(v)
	}
	if g.Value() != 7 {
		t.Fatalf("value = %d, want 7", g.Value())
	}
	if g.Max() != 9 {
		t.Fatalf("max = %d, want 9", g.Max())
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram(10, 20, 50)
	// Boundary semantics: bucket i counts v <= bounds[i].
	for _, v := range []int64{-1, 0, 10} { // all land in bucket 0
		h.Observe(v)
	}
	h.Observe(11) // bucket 1
	h.Observe(20) // bucket 1
	h.Observe(50) // bucket 2
	h.Observe(51) // overflow
	h.Observe(1 << 40)

	s := h.Snapshot()
	want := []int64{3, 2, 1, 2}
	if len(s.Counts) != len(want) {
		t.Fatalf("counts len = %d, want %d", len(s.Counts), len(want))
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]int64{{}, {5, 5}, {10, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bounds %v did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(10, 100)
	b := NewHistogram(10, 100)
	a.Observe(5)
	a.Observe(50)
	b.Observe(50)
	b.Observe(5000)

	m, err := a.Snapshot().Merge(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 4 || m.Sum != 5105 {
		t.Fatalf("merged count=%d sum=%d", m.Count, m.Sum)
	}
	for i, w := range []int64{1, 2, 1} {
		if m.Counts[i] != w {
			t.Fatalf("merged bucket %d = %d, want %d", i, m.Counts[i], w)
		}
	}

	// Merging with an empty snapshot keeps the populated side.
	m2, err := a.Snapshot().Merge(HistogramSnapshot{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Count != 2 {
		t.Fatalf("merge with empty lost data: %+v", m2)
	}
	m3, err := HistogramSnapshot{}.Merge(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if m3.Count != 2 {
		t.Fatalf("empty merge lost data: %+v", m3)
	}

	// Mismatched bounds must error.
	c := NewHistogram(10, 99)
	if _, err := a.Snapshot().Merge(c.Snapshot()); err == nil {
		t.Fatal("merge of mismatched bounds succeeded")
	}
	d := NewHistogram(10)
	if _, err := a.Snapshot().Merge(d.Snapshot()); err == nil {
		t.Fatal("merge of different bucket counts succeeded")
	}
}

func TestHistogramQuantileAndMean(t *testing.T) {
	h := NewHistogram(10, 20, 30, 40)
	for v := int64(1); v <= 40; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := s.Mean(); got != 20.5 {
		t.Fatalf("mean = %v, want 20.5", got)
	}
	p50 := s.Quantile(0.50)
	if p50 < 15 || p50 > 25 {
		t.Fatalf("p50 = %d, want ~20", p50)
	}
	p95 := s.Quantile(0.95)
	if p95 < 30 || p95 > 40 {
		t.Fatalf("p95 = %d, want ~38", p95)
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty quantile not 0")
	}
}

func TestBucketHelpers(t *testing.T) {
	for _, bounds := range [][]int64{DurationBuckets(), LinearBuckets(0, 5, 8), ExpBuckets(1, 1.3, 30)} {
		if len(bounds) == 0 {
			t.Fatal("empty bounds")
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("bounds not ascending at %d: %v", i, bounds)
			}
		}
		NewHistogram(bounds...) // must not panic
	}
}

func TestRegistryCreateOrGet(t *testing.T) {
	r := NewRegistry("root")
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter not stable")
	}
	if r.Histogram("h", 1, 2) != r.Histogram("h", 9, 9, 9) {
		t.Fatal("histogram not stable")
	}
	if r.Child("c") != r.Child("c") {
		t.Fatal("child not stable")
	}
}

func TestRegistrySnapshotTree(t *testing.T) {
	r := NewRegistry("conn")
	r.Counter("blocks").Add(12)
	r.Gauge("inflight").Set(4)
	r.Histogram("lat", 10, 100).Observe(42)
	ch := r.Child("chan0")
	ch.Counter("bytes").Add(1 << 20)
	r.Child("chan1").Counter("bytes").Add(2 << 20)

	s := r.Snapshot()
	if s.Counter("blocks") != 12 {
		t.Fatalf("blocks = %d", s.Counter("blocks"))
	}
	if s.Gauges["inflight"].Value != 4 {
		t.Fatalf("gauge = %+v", s.Gauges["inflight"])
	}
	if s.Histogram("lat").Count != 1 {
		t.Fatal("histogram missing")
	}
	if len(s.Children) != 2 || s.Children[0].Name != "chan0" || s.Children[1].Name != "chan1" {
		t.Fatalf("children not sorted: %+v", s.Children)
	}
	if s.Find("chan1").Counter("bytes") != 2<<20 {
		t.Fatal("Find failed")
	}
	if s.Find("nope") != nil {
		t.Fatal("Find invented a child")
	}
	// Absent lookups are zero-valued, not panics.
	if s.Counter("nope") != 0 || s.Find("nope").Counter("x") != 0 {
		t.Fatal("absent lookups non-zero")
	}

	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"conn:", "blocks", "chan0:", "chan1:", "lat"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text missing %q:\n%s", want, text)
		}
	}

	js, err := s.MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("blocks") != 12 || back.Find("chan0").Counter("bytes") != 1<<20 {
		t.Fatalf("JSON round-trip lost data: %+v", back)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry("root")
	var wg sync.WaitGroup
	const workers = 8
	const iters = 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("n").Inc()
				r.Child("c").Counter("n").Inc()
				r.Histogram("h", 10, 100, 1000).Observe(int64(i))
				r.Gauge("g").Set(int64(i))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counter("n") != workers*iters {
		t.Fatalf("counter = %d, want %d", s.Counter("n"), workers*iters)
	}
	if s.Find("c").Counter("n") != workers*iters {
		t.Fatal("child counter lost increments")
	}
	if s.Histogram("h").Count != workers*iters {
		t.Fatal("histogram lost observations")
	}
}

func TestFabricMetrics(t *testing.T) {
	r := NewRegistry("fabric")
	m := NewFabricMetrics(r)
	m.Posted(verbs.OpWriteImm, 4096)
	m.Posted(verbs.OpSend, 64)
	m.Completed(verbs.OpWriteImm)
	m.Rx(4096)
	m.RNR()

	if m.TxBytes() != 4160 || m.RxBytes() != 4096 || m.RNRCount() != 1 {
		t.Fatalf("byte accounting wrong: tx=%d rx=%d rnr=%d", m.TxBytes(), m.RxBytes(), m.RNRCount())
	}
	if m.PostedCount(verbs.OpWriteImm) != 1 || m.CompletedCount(verbs.OpWriteImm) != 1 {
		t.Fatal("opcode accounting wrong")
	}
	s := r.Snapshot()
	if s.Counter("wr_posted_RDMA_WRITE_WITH_IMM") != 1 {
		t.Fatalf("registry missing opcode counter: %v", s.Counters)
	}
	if s.Counter("tx_bytes") != 4160 || s.Counter("rnr_events") != 1 {
		t.Fatalf("registry counters wrong: %v", s.Counters)
	}

	// Nil metrics are no-ops; standalone (nil registry) metrics count.
	var nilM *FabricMetrics
	nilM.Posted(verbs.OpSend, 10)
	nilM.Completed(verbs.OpSend)
	nilM.Rx(10)
	nilM.RNR()
	if nilM.TxBytes() != 0 || nilM.PostedCount(verbs.OpSend) != 0 {
		t.Fatal("nil fabric metrics counted")
	}
	solo := NewFabricMetrics(nil)
	solo.Posted(verbs.OpSend, 10)
	if solo.TxBytes() != 10 {
		t.Fatal("standalone fabric metrics dropped bytes")
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry("rftpd")
	r.Counter("sessions").Add(3)
	h := Handler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if snap.Counter("sessions") != 3 {
		t.Fatalf("handler snapshot wrong: %+v", snap)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/?text=1", nil))
	if !strings.Contains(rec.Body.String(), "sessions") {
		t.Fatalf("text rendering missing counter:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 404 {
		t.Fatalf("nil registry status %d, want 404", rec.Code)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := &Counter{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkNilCounterAdd(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DurationBuckets()...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 100)
	}
}
