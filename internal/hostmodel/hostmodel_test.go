package hostmodel

import (
	"testing"
	"testing/quick"
	"time"

	"rftp/internal/sim"
)

func newHost(t *testing.T) (*sim.Scheduler, *Host) {
	t.Helper()
	s := sim.New(1)
	return s, NewHost(s, "h", 8, DefaultParams())
}

func TestThreadSerializesWork(t *testing.T) {
	s, h := newHost(t)
	th := h.NewThread("w")
	var done []time.Duration
	// Three 10ms jobs posted at t=0 must finish at 10, 20, 30ms.
	for i := 0; i < 3; i++ {
		th.Post(10*time.Millisecond, func() { done = append(done, s.Now()) })
	}
	s.RunAll()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	if len(done) != 3 {
		t.Fatalf("finished %d jobs, want 3", len(done))
	}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("job %d finished at %v, want %v", i, done[i], want[i])
		}
	}
	if th.Busy() != 30*time.Millisecond {
		t.Fatalf("busy = %v, want 30ms", th.Busy())
	}
}

func TestThreadIdleGapsNotCounted(t *testing.T) {
	s, h := newHost(t)
	th := h.NewThread("w")
	th.Post(time.Millisecond, func() {})
	s.After(10*time.Millisecond, func() {
		th.Post(time.Millisecond, func() {})
	})
	s.RunAll()
	if th.Busy() != 2*time.Millisecond {
		t.Fatalf("busy = %v, want 2ms", th.Busy())
	}
	if s.Now() != 11*time.Millisecond {
		t.Fatalf("end = %v, want 11ms", s.Now())
	}
}

func TestBacklogDelaysLaterWork(t *testing.T) {
	s, h := newHost(t)
	th := h.NewThread("w")
	th.Post(50*time.Millisecond, func() {})
	var lateAt time.Duration
	s.After(10*time.Millisecond, func() {
		th.Post(time.Millisecond, func() { lateAt = s.Now() })
	})
	s.RunAll()
	if lateAt != 51*time.Millisecond {
		t.Fatalf("queued-behind work finished at %v, want 51ms", lateAt)
	}
}

func TestUtilizationSince(t *testing.T) {
	s, h := newHost(t)
	th := h.NewThread("w")
	b0, t0 := h.BusyTotal(), s.Now()
	// 25ms of CPU over a 100ms window = 25% of one core.
	th.Post(25*time.Millisecond, func() {})
	s.Run(100 * time.Millisecond)
	if u := h.UtilizationSince(b0, t0); u < 24.9 || u > 25.1 {
		t.Fatalf("utilization = %v%%, want 25%%", u)
	}
}

func TestMultiThreadUtilizationExceeds100(t *testing.T) {
	s, h := newHost(t)
	a, b := h.NewThread("a"), h.NewThread("b")
	b0, t0 := h.BusyTotal(), s.Now()
	a.Post(100*time.Millisecond, func() {})
	b.Post(100*time.Millisecond, func() {})
	s.Run(100 * time.Millisecond)
	if u := h.UtilizationSince(b0, t0); u < 199 || u > 201 {
		t.Fatalf("utilization = %v%%, want 200%%", u)
	}
}

func TestAfterRunsOnThread(t *testing.T) {
	s, h := newHost(t)
	th := h.NewThread("w")
	// Occupy the thread until t=20ms; a timer at 5ms must still wait for
	// the thread.
	th.Post(20*time.Millisecond, func() {})
	var at time.Duration
	th.After(5*time.Millisecond, func() { at = s.Now() })
	s.RunAll()
	if at != 20*time.Millisecond {
		t.Fatalf("After callback at %v, want 20ms (serialized)", at)
	}
}

func TestChargeInterruptModeration(t *testing.T) {
	s := sim.New(1)
	p := DefaultParams()
	p.CompletionsPerInterrupt = 4
	h := NewHost(s, "h", 8, p)
	th := h.NewThread("w")
	var total time.Duration
	for i := 0; i < 8; i++ {
		total += th.ChargeInterrupt()
	}
	if total != 2*p.Interrupt {
		t.Fatalf("8 completions charged %v of interrupts, want %v", total, 2*p.Interrupt)
	}
}

func TestChargeInterruptNoModeration(t *testing.T) {
	s := sim.New(1)
	p := DefaultParams()
	p.CompletionsPerInterrupt = 1
	h := NewHost(s, "h", 8, p)
	th := h.NewThread("w")
	for i := 0; i < 3; i++ {
		if c := th.ChargeInterrupt(); c != p.Interrupt {
			t.Fatalf("call %d charged %v, want %v", i, c, p.Interrupt)
		}
	}
}

func TestNegativeCostPanics(t *testing.T) {
	s, h := newHost(t)
	th := h.NewThread("w")
	defer func() {
		if recover() == nil {
			t.Fatal("negative cost did not panic")
		}
	}()
	th.Post(-time.Second, func() {})
	s.RunAll()
}

func TestZeroCoresPanics(t *testing.T) {
	s := sim.New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("0 cores did not panic")
		}
	}()
	NewHost(s, "h", 0, DefaultParams())
}

func TestScaleNsPerByte(t *testing.T) {
	rate := 0.16
	want := time.Duration(rate * float64(1<<30))
	if got := ScaleNsPerByte(rate, 1<<30); got != want {
		t.Fatalf("ScaleNsPerByte = %v", got)
	}
	if got := ScaleNsPerByte(0, 12345); got != 0 {
		t.Fatalf("zero rate gave %v", got)
	}
}

func TestMaxQueueHighWater(t *testing.T) {
	s, h := newHost(t)
	th := h.NewThread("w")
	for i := 0; i < 5; i++ {
		th.Post(time.Millisecond, func() {})
	}
	s.RunAll()
	if th.MaxQueue() != 5 {
		t.Fatalf("MaxQueue = %d, want 5", th.MaxQueue())
	}
	if th.Completed() != 5 {
		t.Fatalf("Completed = %d, want 5", th.Completed())
	}
}

// Property: total busy time equals the sum of posted costs, regardless of
// posting pattern.
func TestBusyConservationProperty(t *testing.T) {
	f := func(costs []uint16) bool {
		s := sim.New(1)
		h := NewHost(s, "h", 4, DefaultParams())
		th := h.NewThread("w")
		var want time.Duration
		for _, c := range costs {
			d := time.Duration(c) * time.Microsecond
			want += d
			th.Post(d, func() {})
		}
		s.RunAll()
		return th.Busy() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a saturated thread's throughput equals 1/serviceTime — the
// single-core ceiling the GridFTP model relies on.
func TestSaturatedThroughputProperty(t *testing.T) {
	s, h := newHost(t)
	th := h.NewThread("w")
	service := 100 * time.Microsecond
	n := 1000
	for i := 0; i < n; i++ {
		th.Post(service, func() {})
	}
	s.RunAll()
	if s.Now() != time.Duration(n)*service {
		t.Fatalf("drained %d jobs in %v, want %v", n, s.Now(), time.Duration(n)*service)
	}
	if th.Backlog() != 0 {
		t.Fatalf("backlog = %v after drain", th.Backlog())
	}
}
