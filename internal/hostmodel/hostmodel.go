// Package hostmodel models host CPU resources for the discrete-event
// simulation.
//
// A Host owns a set of Threads. Each Thread is a serial FIFO CPU server:
// work items posted to it execute one at a time in virtual time, each
// advancing the thread's cumulative busy time by its CPU cost. A thread
// whose offered load exceeds one core's worth of CPU develops a backlog,
// which is exactly how the paper's single-threaded GridFTP ceiling and the
// CPU-versus-block-size curves arise.
//
// Threads are assumed pinned to distinct cores (the testbeds have 8-16
// cores and the applications use far fewer threads), so cross-thread
// contention is not modeled. Utilization is reported the way the paper
// reports it: percent of one core, so a 12-core host can reach 1200%.
package hostmodel

import (
	"fmt"
	"time"

	"rftp/internal/sim"
)

// Params holds the CPU cost calibration constants. All costs are charged
// to modeled threads; see EXPERIMENTS.md for the calibration rationale.
type Params struct {
	// PostWR is the CPU cost to build and post one work request through
	// the verbs interface (WQE construction + doorbell).
	PostWR time.Duration
	// Completion is the CPU cost to reap and dispatch one completion.
	Completion time.Duration
	// Interrupt is the cost of one completion interrupt/event wakeup.
	Interrupt time.Duration
	// CompletionsPerInterrupt models interrupt moderation: one Interrupt
	// cost is charged per this many completions (>=1).
	CompletionsPerInterrupt int
	// MemLoadNsPerByte is the per-byte CPU cost to synthesize payload
	// (reading /dev/zero and faulting/memsetting pages). The paper
	// measured 50% of one core at 25 Gbps, i.e. 0.16 ns/B.
	MemLoadNsPerByte float64
	// MemStoreNsPerByte is the per-byte CPU cost to consume payload into
	// /dev/null (near zero: no copy is performed).
	MemStoreNsPerByte float64
	// TCPPerSegment is the kernel CPU cost per TCP segment processed
	// (sender or receiver side).
	TCPPerSegment time.Duration
	// TCPCopyNsPerByte is the per-byte user<->kernel copy cost paid by
	// TCP-based tools (RDMA paths are zero-copy and never pay it).
	TCPCopyNsPerByte float64
	// Syscall is the fixed cost of one read/write/epoll syscall.
	Syscall time.Duration
	// DiskPosixNsPerByte is the per-byte CPU cost of buffered POSIX disk
	// writes (page-cache copy + writeback management).
	DiskPosixNsPerByte float64
	// DiskDirectNsPerByte is the per-byte CPU cost of O_DIRECT disk
	// writes (DMA setup only).
	DiskDirectNsPerByte float64
}

// DefaultParams returns the calibration used throughout the experiments.
// The constants are chosen to land in the ranges reported for the paper's
// 2010-era Xeon/Opteron hosts; EXPERIMENTS.md documents each choice.
func DefaultParams() Params {
	return Params{
		PostWR:                  300 * time.Nanosecond,
		Completion:              700 * time.Nanosecond,
		Interrupt:               2 * time.Microsecond,
		CompletionsPerInterrupt: 4,
		MemLoadNsPerByte:        0.16,
		MemStoreNsPerByte:       0.01,
		TCPPerSegment:           1200 * time.Nanosecond,
		TCPCopyNsPerByte:        0.30,
		Syscall:                 900 * time.Nanosecond,
		DiskPosixNsPerByte:      0.35,
		DiskDirectNsPerByte:     0.05,
	}
}

// ScaleNsPerByte converts a ns/byte rate and a byte count to a Duration.
func ScaleNsPerByte(nsPerByte float64, n int) time.Duration {
	return time.Duration(nsPerByte * float64(n))
}

// Host is a simulated machine: a named collection of threads plus the
// cost parameters its software uses.
type Host struct {
	Name   string
	Cores  int
	Params Params

	sched   *sim.Scheduler
	threads []*Thread
}

// NewHost creates a host with the given core count attached to sched.
func NewHost(sched *sim.Scheduler, name string, cores int, p Params) *Host {
	if cores < 1 {
		panic("hostmodel: cores must be >= 1")
	}
	if p.CompletionsPerInterrupt < 1 {
		p.CompletionsPerInterrupt = 1
	}
	return &Host{Name: name, Cores: cores, Params: p, sched: sched}
}

// Scheduler returns the simulation scheduler the host runs on.
func (h *Host) Scheduler() *sim.Scheduler { return h.sched }

// NewThread creates a modeled thread on the host. The label appears in
// debug output only.
func (h *Host) NewThread(label string) *Thread {
	t := &Thread{host: h, label: label}
	h.threads = append(h.threads, t)
	return t
}

// Threads returns the host's threads.
func (h *Host) Threads() []*Thread { return h.threads }

// BusyTotal returns cumulative busy CPU time across all threads.
func (h *Host) BusyTotal() time.Duration {
	var sum time.Duration
	for _, t := range h.threads {
		sum += t.Busy()
	}
	return sum
}

// UtilizationSince reports average CPU utilization in percent-of-one-core
// over the window (busyAtStart captured earlier via BusyTotal, startTime
// the virtual time then). A 12-core host saturating all cores reports
// 1200.
func (h *Host) UtilizationSince(busyAtStart, startTime time.Duration) float64 {
	elapsed := h.sched.Now() - startTime
	if elapsed <= 0 {
		return 0
	}
	busy := h.BusyTotal() - busyAtStart
	return 100 * float64(busy) / float64(elapsed)
}

// Thread is a serial FIFO CPU server in virtual time. It satisfies the
// protocol core's Loop interface: closures posted to it run one at a
// time, each charged its CPU cost, and a backlog delays later work.
type Thread struct {
	host      *Host
	label     string
	busyUntil time.Duration
	busy      time.Duration
	queued    int
	maxQueue  int
	completed uint64
	intAccum  int // completions since last charged interrupt
	taskFree  []*threadTask
}

// threadTask carries one posted work item through the scheduler without
// materializing a closure. Tasks are recycled on the owning thread's
// freelist (the simulation is single-goroutine, so no locking).
type threadTask struct {
	t  *Thread
	fn func()
}

func runThreadTask(arg any) {
	tt := arg.(*threadTask)
	t, fn := tt.t, tt.fn
	tt.fn = nil
	t.taskFree = append(t.taskFree, tt)
	t.queued--
	t.completed++
	fn()
}

// Label returns the thread's debug label.
func (t *Thread) Label() string { return t.label }

// Host returns the host owning the thread.
func (t *Thread) Host() *Host { return t.host }

// HostParams returns the owning host's cost parameters.
func (t *Thread) HostParams() Params { return t.host.Params }

// Busy returns cumulative CPU time consumed by work posted to the thread.
func (t *Thread) Busy() time.Duration { return t.busy }

// Completed returns the number of work items executed.
func (t *Thread) Completed() uint64 { return t.completed }

// MaxQueue returns the high-water mark of queued work items.
func (t *Thread) MaxQueue() int { return t.maxQueue }

// Now returns the current virtual time.
func (t *Thread) Now() time.Duration { return t.host.sched.Now() }

// Post schedules fn to run on the thread, charging cost CPU time. The
// callback fires in virtual time when the work *finishes* (FIFO after all
// previously posted work).
func (t *Thread) Post(cost time.Duration, fn func()) {
	if cost < 0 {
		panic(fmt.Sprintf("hostmodel: negative cost %v", cost))
	}
	now := t.host.sched.Now()
	start := now
	if t.busyUntil > start {
		start = t.busyUntil
	}
	finish := start + cost
	t.busyUntil = finish
	t.busy += cost
	t.queued++
	if t.queued > t.maxQueue {
		t.maxQueue = t.queued
	}
	var tt *threadTask
	if n := len(t.taskFree); n > 0 {
		tt = t.taskFree[n-1]
		t.taskFree[n-1] = nil
		t.taskFree = t.taskFree[:n-1]
	} else {
		tt = &threadTask{t: t}
	}
	tt.fn = fn
	t.host.sched.PostArg(finish, runThreadTask, tt)
}

// Charge adds cost to the thread's CPU accounting as if consumed by the
// currently executing work item: it extends the busy horizon, delaying
// every work item posted *after* the charge (items already queued keep
// their scheduled finish times). Fabrics use it to bill synchronous
// verbs calls (posting a WR) to the calling thread.
func (t *Thread) Charge(cost time.Duration) {
	if cost <= 0 {
		return
	}
	now := t.host.sched.Now()
	if t.busyUntil < now {
		t.busyUntil = now
	}
	t.busyUntil += cost
	t.busy += cost
}

// After schedules fn to run on the thread no earlier than d from now
// (timer first, then FIFO through the thread with zero CPU cost).
func (t *Thread) After(d time.Duration, fn func()) {
	t.host.sched.After(d, func() { t.Post(0, fn) })
}

// ChargeInterrupt charges the interrupt cost amortized by interrupt
// moderation: every CompletionsPerInterrupt calls pay one Interrupt.
// It returns the cost to fold into the caller's Post.
func (t *Thread) ChargeInterrupt() time.Duration {
	t.intAccum++
	if t.intAccum >= t.host.Params.CompletionsPerInterrupt {
		t.intAccum = 0
		return t.host.Params.Interrupt
	}
	return 0
}

// Backlog returns how far in the future the thread's queue currently
// extends (zero when idle).
func (t *Thread) Backlog() time.Duration {
	now := t.host.sched.Now()
	if t.busyUntil <= now {
		return 0
	}
	return t.busyUntil - now
}
