package hostmodel

import (
	"testing"
	"time"

	"rftp/internal/sim"
)

func TestChargeExtendsBusyHorizon(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h", 4, DefaultParams())
	th := h.NewThread("w")
	var order []int
	th.Post(time.Millisecond, func() {
		// Synchronous work inside the handler (e.g. a verbs post).
		th.Charge(2 * time.Millisecond)
		order = append(order, 1)
		// Work posted after the charge waits for it.
		th.Post(time.Millisecond, func() { order = append(order, 2) })
	})
	s.RunAll()
	// First job finishes at 1ms, the charge extends the horizon to 3ms,
	// so the second job runs 3..4ms.
	if s.Now() != 4*time.Millisecond {
		t.Fatalf("end = %v, want 4ms", s.Now())
	}
	if th.Busy() != 4*time.Millisecond {
		t.Fatalf("busy = %v, want 4ms", th.Busy())
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestChargeOnIdleThread(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h", 4, DefaultParams())
	th := h.NewThread("w")
	s.After(10*time.Millisecond, func() { th.Charge(time.Millisecond) })
	s.RunAll()
	if th.Busy() != time.Millisecond {
		t.Fatalf("busy = %v", th.Busy())
	}
	// A job posted right after the charge waits for it.
	done := time.Duration(0)
	s.After(0, func() {}) // nothing; clock is at 10ms
	th.Post(0, func() { done = s.Now() })
	s.RunAll()
	if done != 11*time.Millisecond {
		t.Fatalf("post after charge finished at %v, want 11ms", done)
	}
}

func TestChargeZeroOrNegativeIsNoop(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h", 4, DefaultParams())
	th := h.NewThread("w")
	th.Charge(0)
	th.Charge(-time.Second)
	if th.Busy() != 0 {
		t.Fatalf("busy = %v", th.Busy())
	}
}

func TestHostAccessors(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "box", 8, DefaultParams())
	th := h.NewThread("t0")
	if th.Host() != h {
		t.Fatal("Host() wrong")
	}
	if th.HostParams().PostWR != DefaultParams().PostWR {
		t.Fatal("HostParams() wrong")
	}
	if th.Label() != "t0" {
		t.Fatal("Label() wrong")
	}
	if h.Scheduler() != s {
		t.Fatal("Scheduler() wrong")
	}
	if len(h.Threads()) != 1 {
		t.Fatal("Threads() wrong")
	}
}
