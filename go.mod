module rftp

go 1.22
