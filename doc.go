// Package rftp is the module root of a from-scratch Go reproduction of
// "Protocols for Wide-Area Data-intensive Applications: Design and
// Performance Issues" (Ren et al., SC 2012): an RDMA-based data-transfer
// middleware (RFTP) with its flow control, connection management, and
// task synchronization, plus every substrate needed to regenerate the
// paper's evaluation without RDMA hardware.
//
// The root package contains only the per-figure benchmarks
// (bench_test.go); the implementation lives under internal/:
//
//   - internal/core — the protocol (the paper's contribution)
//   - internal/verbs — OFED-like verbs API
//   - internal/fabric/{simfabric,chanfabric,netfabric} — three fabrics
//   - internal/{sim,hostmodel,tcpmodel,gridftp,diskmodel} — substrates
//   - internal/{ioengine,bench,metrics,trace} — measurement & tooling
//
// See README.md, DESIGN.md and EXPERIMENTS.md.
package rftp
